"""Benchmark: scenario-generation throughput and exploration episode cost.

The scenario subsystem sits on the campaign hot path — ``repro campaign
--grid scenarios`` samples and compiles a program per grid point, and every
``repro explore`` episode samples, compiles *and executes* one.  This
benchmark measures the two stages separately:

* **generation throughput** — programs sampled + compiled per second from the
  GPCA scenario space (pure Python, no simulation), and the stimulus volume
  that throughput corresponds to;
* **exploration episodes** — full coverage-guided episodes per second against
  implementation scheme 1, i.e. sampling + compilation + simulated execution
  + coverage bookkeeping.

Results are recorded to ``BENCH_scenarios.json`` at the repository root.
Determinism is asserted alongside the timing: two samplers with the same
seed must produce identical programs, and two explorations with the same
seed identical reports.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.campaign import process_cache
from repro.gpca import build_scheme_system, gpca_scenario_space
from repro.scenarios import CoverageGuidedExplorer, ScenarioSampler

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

PROGRAM_COUNT = 300
EPISODES = 12
SEED = 20140324  # the paper's conference date


def sample_and_compile(count: int = PROGRAM_COUNT, seed: int = SEED):
    """Sample ``count`` programs and compile each to its stimulus schedule."""
    sampler = ScenarioSampler(gpca_scenario_space(), seed=seed)
    cases = []
    for index in range(count):
        program = sampler.sample()
        cases.append(program.compile(seed=index))
    return cases


def run_exploration(episodes: int = EPISODES, seed: int = SEED):
    """One coverage-guided exploration against scheme 1 (fig2 model)."""
    artifacts = process_cache().artifacts_for_model("fig2")

    def factory():
        return build_scheme_system(1, seed=11, artifacts=artifacts)

    explorer = CoverageGuidedExplorer(
        gpca_scenario_space(), factory, artifacts.code_model, seed=seed
    )
    return explorer.explore(episodes)


def test_scenario_generation_throughput_and_record(write_artifact):
    """Measure generation + exploration throughput; record BENCH_scenarios.json."""
    # Generation: sample + compile, determinism checked against a second pass.
    started = time.perf_counter()
    cases = sample_and_compile()
    generation_s = time.perf_counter() - started
    assert cases == sample_and_compile(), "sampling is not seed-deterministic"
    stimulus_count = sum(len(case.stimuli) for case in cases)

    # Exploration: full episodes including simulated execution.
    started = time.perf_counter()
    report = run_exploration()
    exploration_s = time.perf_counter() - started
    assert report.summary() == run_exploration().summary(), (
        "exploration is not seed-deterministic"
    )
    assert report.transition_coverage.ratio > 0.0

    payload = {
        "seed": SEED,
        "generation": {
            "programs": PROGRAM_COUNT,
            "stimuli": stimulus_count,
            "seconds": round(generation_s, 4),
            "programs_per_second": round(PROGRAM_COUNT / generation_s, 1),
            "stimuli_per_second": round(stimulus_count / generation_s, 1),
        },
        "exploration": {
            "episodes": EPISODES,
            "seconds": round(exploration_s, 4),
            "episodes_per_second": round(EPISODES / exploration_s, 2),
            "transition_coverage": report.transition_coverage.ratio,
            "state_coverage": report.state_coverage.ratio,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"sampled+compiled {PROGRAM_COUNT} programs ({stimulus_count} stimuli) "
        f"in {generation_s:.3f} s ({payload['generation']['programs_per_second']} programs/s)",
        f"explored {EPISODES} episodes in {exploration_s:.3f} s "
        f"({payload['exploration']['episodes_per_second']} episodes/s)",
        report.transition_coverage.summary(),
        report.state_coverage.summary(),
    ]
    write_artifact("scenarios.txt", "\n".join(lines))
