"""Ablation A3: the layered framework versus the related-work baselines.

The paper positions its framework against (i) SIL/HIL functional conformance
testing, which cannot assess timing at all, and (ii) UPPAAL-style online
black-box testing, which detects timing violations but cannot attribute them
to delay segments.  This benchmark runs all three on the same scheme-3
implementation and compares the diagnostic information each yields.
"""

from __future__ import annotations

import pytest

from repro.baselines import BlackBoxOnlineTester, FunctionalConformanceChecker
from repro.codegen import generate_code
from repro.core import MTestAnalyzer, RTestRunner
from repro.gpca import (
    bolus_request_test_case,
    build_fig2_statechart,
    build_pump_interface,
    req1_bolus_start,
    scheme_factory,
)

SCHEME = 3
SEED = 33
SAMPLES = 6


@pytest.fixture(scope="module")
def test_case():
    return bolus_request_test_case(samples=SAMPLES, seed=9)


def test_functional_conformance_baseline(benchmark, write_artifact):
    chart = build_fig2_statechart()
    checker = FunctionalConformanceChecker(chart, generate_code(chart))
    report = benchmark(lambda: checker.run(checker.bolus_scenario(), "bolus"))
    write_artifact("baseline_functional.txt", report.summary())
    # Functional conformance passes even though the implementation violates REQ1.
    assert report.conformant


def test_blackbox_online_baseline(benchmark, test_case, write_artifact):
    tester = BlackBoxOnlineTester(scheme_factory(SCHEME, seed=SEED))
    report = benchmark.pedantic(lambda: tester.run(test_case), rounds=1, iterations=1)
    write_artifact("baseline_blackbox.txt", report.summary())
    # The black-box tester detects the violation ...
    assert not report.passed
    # ... but yields no attribution at all.
    assert report.diagnostic_information() == []


def test_layered_r_m_testing(benchmark, test_case, write_artifact):
    def run_layered():
        r_report = RTestRunner(scheme_factory(SCHEME, seed=SEED)).run(test_case)
        analyzer = MTestAnalyzer(build_pump_interface(), req1_bolus_start())
        m_report = analyzer.analyze_violations(r_report)
        return r_report, m_report

    r_report, m_report = benchmark.pedantic(run_layered, rounds=1, iterations=1)
    write_artifact(
        "baseline_layered.txt",
        f"{r_report.summary()}\n{m_report.summary()}\n"
        f"delay segments per violating sample: 3 (+{len(m_report.transition_names())} transition delays)",
    )
    # Same verdict as the black-box baseline ...
    assert not r_report.passed
    # ... plus a delay-segment decomposition for every violating sample.
    assert len(m_report.segments) == r_report.violation_count
    assert all(segment.input_delay_us is not None for segment in m_report.segments)
    assert m_report.dominant_segment() is not None


def test_diagnostic_information_comparison(benchmark, test_case, write_artifact):
    """The quantitative comparison row: items of diagnostic output per tool."""
    tester = BlackBoxOnlineTester(scheme_factory(SCHEME, seed=SEED))
    blackbox = benchmark.pedantic(lambda: tester.run(test_case), rounds=1, iterations=1)

    r_report = RTestRunner(scheme_factory(SCHEME, seed=SEED)).run(test_case)
    m_report = MTestAnalyzer(build_pump_interface(), req1_bolus_start()).analyze_violations(r_report)

    blackbox_items = len(blackbox.diagnostic_information())
    layered_items = sum(
        3 + len(segment.transition_delays) for segment in m_report.segments
    )
    write_artifact(
        "baseline_comparison.txt",
        "diagnostic items (how many measured quantities localise the violation)\n"
        f"  functional conformance : 0 (timing not assessed)\n"
        f"  black-box online       : {blackbox_items}\n"
        f"  layered R-M testing    : {layered_items}",
    )
    assert blackbox_items == 0
    assert layered_items >= 3 * len(m_report.segments)
