"""Benchmark: run-store insert/query throughput and warm-resume speedup.

Measures the three performance claims of the persistence layer and records
them in ``BENCH_store.json``:

* **insert throughput** — records per second through ``put_records``
  (batched, one transaction per batch), over synthetic records derived from
  a real executed campaign so payload sizes are representative;
* **query throughput** — coordinate lookups per second (``lookup``), the
  operation incremental campaigns issue once per grid point, plus snapshot
  reassembly (``load_campaign``) per second;
* **warm-resume speedup** — the subsystem's reason to exist: a fully stored
  campaign resumed through :class:`CampaignRunner` must execute **zero**
  runs (asserted via the worker execution counter) and reassemble a
  byte-identical aggregate at least 10x faster than cold execution.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

from repro.campaign import CampaignRunner, execution_count, table_one_spec
from repro.store import RunStore

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

SYNTHETIC_RECORDS = 600
LOOKUP_ROUNDS = 5
SAMPLES = 4
MIN_RESUME_SPEEDUP = 10.0


def _synthetic_records(base_records, count):
    """``count`` distinct-coordinate records cloned from real executed ones.

    Varying ``sut_seed`` varies the coordinate (and therefore the store key)
    without re-executing anything, so insert/query timing measures the store,
    not the simulator.
    """
    clones = []
    for offset in range(count):
        source = base_records[offset % len(base_records)]
        clones.append(
            replace(source, spec=replace(source.spec, sut_seed=100_000 + offset))
        )
    return clones


def test_store_throughput_and_resume_speedup(tmp_path, write_artifact):
    spec = table_one_spec(samples=SAMPLES)

    # --- cold execution, persisting as it goes -------------------------
    cold_store = RunStore(tmp_path / "runs.db")
    cold_runner = CampaignRunner(spec, store=cold_store)
    started = time.perf_counter()
    cold_result = cold_runner.run()
    cold_s = time.perf_counter() - started
    assert cold_runner.executed_count == len(cold_result)

    # --- warm resume: zero executions, byte-identical ------------------
    executed_before = execution_count()
    warm_runner = CampaignRunner(spec, store=cold_store, resume=True)
    started = time.perf_counter()
    warm_result = warm_runner.run()
    warm_s = time.perf_counter() - started
    assert execution_count() == executed_before, "warm resume executed a run"
    assert warm_runner.executed_count == 0
    assert warm_result.to_json() == cold_result.to_json(), "resume changed the aggregate"
    resume_speedup = cold_s / warm_s if warm_s else float("inf")
    assert resume_speedup >= MIN_RESUME_SPEEDUP, (
        f"warm resume only {resume_speedup:.1f}x faster than cold execution"
    )

    # --- insert throughput (synthetic coordinates, real payloads) ------
    records = _synthetic_records(cold_result.records, SYNTHETIC_RECORDS)
    insert_store = RunStore(tmp_path / "inserts.db")
    started = time.perf_counter()
    insert_store.put_records(records)
    insert_s = time.perf_counter() - started
    inserts_per_second = SYNTHETIC_RECORDS / insert_s
    assert insert_store.counts()["runs"] == SYNTHETIC_RECORDS

    # --- query throughput ----------------------------------------------
    started = time.perf_counter()
    for _ in range(LOOKUP_ROUNDS):
        for record in records:
            assert insert_store.lookup(record.spec) is not None
    lookup_s = time.perf_counter() - started
    lookups_per_second = LOOKUP_ROUNDS * SYNTHETIC_RECORDS / lookup_s

    campaign_id = cold_runner.campaign_id
    started = time.perf_counter()
    for _ in range(LOOKUP_ROUNDS):
        loaded = cold_store.load_campaign(campaign_id)
    reassembly_s = time.perf_counter() - started
    assert loaded.to_json() == cold_result.to_json()
    snapshots_per_second = LOOKUP_ROUNDS / reassembly_s

    insert_store.close()
    cold_store.close()

    payload = {
        "samples": SAMPLES,
        "insert": {
            "records": SYNTHETIC_RECORDS,
            "seconds": round(insert_s, 4),
            "records_per_second": round(inserts_per_second, 1),
        },
        "query": {
            "lookups": LOOKUP_ROUNDS * SYNTHETIC_RECORDS,
            "seconds": round(lookup_s, 4),
            "lookups_per_second": round(lookups_per_second, 1),
            "snapshot_loads_per_second": round(snapshots_per_second, 2),
        },
        "resume": {
            "grid_runs": len(cold_result),
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup": round(resume_speedup, 1),
            "warm_executions": warm_runner.executed_count,
            "byte_identical": warm_result.to_json() == cold_result.to_json(),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    write_artifact(
        "store.txt",
        "\n".join(
            [
                f"insert: {SYNTHETIC_RECORDS} records in {insert_s:.3f} s "
                f"({inserts_per_second:.0f} records/s)",
                f"query: {payload['query']['lookups']} lookups in {lookup_s:.3f} s "
                f"({lookups_per_second:.0f} lookups/s), "
                f"{snapshots_per_second:.1f} snapshot loads/s",
                f"resume: cold {cold_s:.3f} s -> warm {warm_s:.4f} s "
                f"({resume_speedup:.0f}x, {warm_runner.executed_count} executions, "
                f"byte-identical {payload['resume']['byte_identical']})",
            ]
        ),
    )
