"""Benchmark: mutant-generation throughput and kill-matrix campaign speed.

Measures the three performance-relevant stages of the fault-injection /
mutation-analysis subsystem and records the acceptance-relevant detection
results, all deterministically:

* **mutant generation** — mutants generated per second over the fig2 and
  extended GPCA charts, including the structural-fingerprint dedup pass
  (which dominates: every candidate chart is fingerprinted);
* **kill-matrix throughput** — runs per second of the default
  (faults × mutants × schemes × scenarios) grid through the campaign runner,
  serial versus parallel, with the byte-identity of the two aggregates
  asserted (parallel sharding must never change a verdict);
* **detection power** — the mutation score of the GPCA requirement scenarios
  against the generated fig2 mutants and the per-class detection verdict of
  the default seeded fault suite.  These are the numbers the subsystem
  exists to produce: the default suite must detect every platform fault
  class and the requirement tests must kill >= 80 % of the mutants.

Results land in ``BENCH_faults.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.campaign import CampaignRunner, default_worker_count
from repro.faults import KillMatrix, default_matrix_spec, generate_mutants
from repro.gpca.model import build_extended_statechart, build_fig2_statechart

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

GENERATION_ROUNDS = 25
SAMPLES = 3
SEED = 0


def generate_all_mutants():
    """One generation round: mutants of both GPCA charts (including dedup)."""
    return generate_mutants(build_fig2_statechart()) + generate_mutants(
        build_extended_statechart()
    )


def test_fault_subsystem_throughput_and_detection(write_artifact):
    """Measure generation + kill-matrix throughput; record BENCH_faults.json."""
    # Mutant generation: repeated rounds, determinism checked.
    mutants = generate_all_mutants()
    started = time.perf_counter()
    for _ in range(GENERATION_ROUNDS):
        assert generate_all_mutants() == mutants, "mutant generation is not deterministic"
    generation_s = time.perf_counter() - started
    mutants_per_second = GENERATION_ROUNDS * len(mutants) / generation_s

    # Kill matrix: serial, then parallel; aggregates must be byte-identical.
    spec = default_matrix_spec(samples=SAMPLES, base_seed=SEED)
    started = time.perf_counter()
    serial = CampaignRunner(spec, workers=1).run()
    serial_s = time.perf_counter() - started

    workers = max(2, default_worker_count())
    started = time.perf_counter()
    parallel_runner = CampaignRunner(spec, workers=workers)
    parallel = parallel_runner.run()
    parallel_s = time.perf_counter() - started
    if not parallel_runner.fell_back_to_serial:
        assert serial.to_json() == parallel.to_json(), (
            "serial and parallel kill-matrix aggregates differ"
        )

    # Detection power (the subsystem's acceptance numbers).
    matrix = KillMatrix.from_campaign(spec, serial)
    score = matrix.mutation_score
    detected = sorted(matrix.detected_faults())
    undetected = sorted(matrix.undetected_faults())
    assert score is not None and score >= 0.8, (
        f"GPCA requirement tests kill only {score:.0%} of generated mutants"
    )
    assert not undetected, f"platform fault classes undetected: {undetected}"

    payload = {
        "seed": SEED,
        "generation": {
            "rounds": GENERATION_ROUNDS,
            "mutants_per_round": len(mutants),
            "seconds": round(generation_s, 4),
            "mutants_per_second": round(mutants_per_second, 1),
        },
        "kill_matrix": {
            "runs": spec.size,
            "samples": SAMPLES,
            "serial_seconds": round(serial_s, 3),
            "parallel_seconds": round(parallel_s, 3),
            "parallel_workers": workers,
            "schedulable_cpus": default_worker_count(),
            "runs_per_second": round(spec.size / serial_s, 2),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "fell_back_to_serial": parallel_runner.fell_back_to_serial,
            "byte_identical": not parallel_runner.fell_back_to_serial
            and serial.to_json() == parallel.to_json(),
        },
        "detection": {
            "mutation_score": score,
            "mutants": len(matrix.mutant_cells),
            "killed": sorted(matrix.killed_mutants()),
            "surviving": sorted(matrix.surviving_mutants()),
            "fault_classes": len(matrix.fault_cells),
            "detected_faults": detected,
            "undetected_faults": undetected,
            "detected_by": {
                name: matrix.fault_detecting_cases(name) for name in sorted(matrix.fault_cells)
            },
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    lines = [
        f"generated {len(mutants)} mutants/round x {GENERATION_ROUNDS} rounds "
        f"in {generation_s:.3f} s ({mutants_per_second:.0f} mutants/s)",
        f"kill matrix: {spec.size} runs serial {serial_s:.2f} s "
        f"({payload['kill_matrix']['runs_per_second']} runs/s), "
        f"parallel {parallel_s:.2f} s x{workers} workers "
        f"(speedup {payload['kill_matrix']['speedup']})",
        f"mutation score {score:.0%}, fault classes detected "
        f"{len(detected)}/{len(matrix.fault_cells)}",
        matrix.render(),
    ]
    write_artifact("faults.txt", "\n".join(lines))
