"""Ablation A1: how the single-threaded scheme's polling period drives violations.

The paper's scheme 1 polls sensors and steps CODE(M) every 25 ms.  This sweep
varies that period — one campaign grid of scheme-1 points
(:func:`repro.campaign.period_sweep_spec`) — and regenerates the REQ1
R-testing verdicts for each value, showing the crossover from conforming
(short periods) to violating (long periods) behaviour — the design-space view
behind the paper's choice to report scheme 1 at 25 ms.
"""

from __future__ import annotations

from repro.analysis import render_sweep
from repro.campaign import CampaignRunner, period_sweep_spec

PERIODS_MS = (10, 15, 20, 25, 35, 50)
SAMPLES = 6


def run_sweep():
    spec = period_sweep_spec(periods_ms=PERIODS_MS, samples=SAMPLES)
    return CampaignRunner(spec).run().sweep_points("period_ms")


def test_period_sweep(benchmark, write_artifact):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_artifact("ablation_period.txt", render_sweep(points, "period (ms)"))

    by_period = {point.parameter: point for point in points}
    # Short polling periods conform comfortably.
    assert by_period[10.0].violation_rate == 0.0
    # Long polling periods violate REQ1 for most samples.
    assert by_period[50.0].violation_rate >= 0.5
    # The violation rate is (weakly) monotone across the extremes.
    assert by_period[50.0].violation_rate >= by_period[10.0].violation_rate
    # Mean latency grows with the polling period.
    assert by_period[50.0].mean_latency_ms > by_period[10.0].mean_latency_ms
