"""Unit tests for the fixed-priority preemptive scheduler."""

import pytest

from repro.platform.kernel.simulator import Simulator
from repro.platform.kernel.time import ms
from repro.platform.rtos.directives import Compute, Delay, Give, Receive, Send, Take
from repro.platform.rtos.scheduler import RTOSScheduler, SchedulerError
from repro.platform.rtos.semaphore import make_binary_semaphore


def make_scheduler(context_switch_us: int = 0):
    sim = Simulator()
    return sim, RTOSScheduler(sim, context_switch_us=context_switch_us)


class TestPeriodicRelease:
    def test_periodic_task_runs_every_period(self):
        sim, rtos = make_scheduler()
        runs = []

        def job():
            runs.append(sim.now)
            yield Compute(ms(1))

        rtos.create_task("periodic", priority=1, job_factory=job, period_us=ms(10))
        rtos.start()
        sim.run_until(ms(45))
        assert runs == [0, ms(10), ms(20), ms(30), ms(40)]

    def test_offset_delays_first_release(self):
        sim, rtos = make_scheduler()
        runs = []

        def job():
            runs.append(sim.now)
            yield Compute(100)

        rtos.create_task("offset", priority=1, job_factory=job, period_us=ms(10), offset_us=ms(4))
        rtos.start()
        sim.run_until(ms(25))
        assert runs == [ms(4), ms(14), ms(24)]

    def test_overrunning_job_skips_next_release(self):
        sim, rtos = make_scheduler()
        runs = []

        def job():
            runs.append(sim.now)
            yield Compute(ms(15))  # longer than the 10 ms period

        task = rtos.create_task("overrun", priority=1, job_factory=job, period_us=ms(10))
        rtos.start()
        sim.run_until(ms(50))
        # Releases at 10, 30, 50 are skipped while the previous job still runs.
        assert runs == [0, ms(20), ms(40)]
        assert task.stats.deadline_misses >= 2

    def test_completion_statistics(self):
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(2))

        task = rtos.create_task("stats", priority=1, job_factory=job, period_us=ms(10))
        rtos.start()
        sim.run_until(ms(35))
        assert task.stats.activations == 4
        assert task.stats.completions == 4
        assert task.stats.max_response_us == ms(2)
        assert task.stats.cpu_time_us == 4 * ms(2)


class TestPreemption:
    def test_higher_priority_preempts_lower(self):
        sim, rtos = make_scheduler()
        finish_times = {}

        def low_job():
            yield Compute(ms(10))
            finish_times["low"] = sim.now

        def high_job():
            yield Compute(ms(2))
            finish_times["high"] = sim.now

        low = rtos.create_task("low", priority=1, job_factory=low_job)
        high = rtos.create_task("high", priority=5, job_factory=high_job)
        rtos.start()
        rtos.activate(low)
        rtos.activate(high, delay_us=ms(3))
        sim.run_until(ms(30))
        # High runs 3..5; low runs 0..3 and 5..12.
        assert finish_times["high"] == ms(5)
        assert finish_times["low"] == ms(12)
        assert low.stats.preemptions == 1

    def test_equal_priority_does_not_preempt(self):
        sim, rtos = make_scheduler()
        finish_times = {}

        def job_a():
            yield Compute(ms(10))
            finish_times["a"] = sim.now

        def job_b():
            yield Compute(ms(2))
            finish_times["b"] = sim.now

        a = rtos.create_task("a", priority=3, job_factory=job_a)
        b = rtos.create_task("b", priority=3, job_factory=job_b)
        rtos.start()
        rtos.activate(a)
        rtos.activate(b, delay_us=ms(1))
        sim.run_until(ms(30))
        assert finish_times["a"] == ms(10)
        assert finish_times["b"] == ms(12)
        assert a.stats.preemptions == 0

    def test_cpu_time_conserved_under_preemption(self):
        sim, rtos = make_scheduler()

        def low_job():
            yield Compute(ms(20))

        def high_job():
            yield Compute(ms(5))

        low = rtos.create_task("low", priority=1, job_factory=low_job)
        high = rtos.create_task("high", priority=5, job_factory=high_job, period_us=ms(10))
        rtos.start()
        rtos.activate(low)
        sim.run_until(ms(60))
        assert low.stats.cpu_time_us == ms(20)
        assert high.stats.cpu_time_us == high.stats.completions * ms(5)


class TestDeadlineMissAccounting:
    """Regression: each missed activation is counted exactly once.

    ``deadline_misses`` increments in two code paths — the skipped-release
    path of ``_release`` (the previous job still runs, so this activation
    never starts) and the late-completion path of ``_finish_job`` (the job
    ran but responded after its deadline).  The paths cover *disjoint*
    activations: a skipped release is an activation that never became a job,
    a late completion is one that did.  No single activation can traverse
    both, so no miss is ever double-counted.
    """

    def test_late_completion_without_skip_counts_one_miss(self):
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(12))  # runs past the 10 ms deadline, within the period

        task = rtos.create_task(
            "late", priority=1, job_factory=job, period_us=ms(20), deadline_us=ms(10)
        )
        rtos.start()
        sim.run_until(ms(19))  # exactly one activation completes (late)
        assert task.stats.completions == 1
        assert task.stats.deadline_misses == 1

    def test_on_time_completion_counts_no_miss(self):
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(3))

        task = rtos.create_task(
            "fine", priority=1, job_factory=job, period_us=ms(20), deadline_us=ms(10)
        )
        rtos.start()
        sim.run_until(ms(100))
        assert task.stats.completions >= 4
        assert task.stats.deadline_misses == 0

    def test_skipped_release_counts_one_miss_when_the_job_meets_its_deadline(self):
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(15))  # overruns the 10 ms period but not the deadline

        task = rtos.create_task(
            "overrun", priority=1, job_factory=job, period_us=ms(10), deadline_us=ms(20)
        )
        rtos.start()
        sim.run_until(ms(19))  # release at 10 ms skipped; job finishes at 15 ms
        # The job met its (explicit, longer-than-period) deadline, so the
        # only miss is the skipped release — counted exactly once.
        assert task.stats.completions == 1
        assert task.stats.deadline_misses == 1

    def test_implicit_deadline_defaults_to_the_period(self):
        """Audit finding: a periodic task without an explicit deadline gets an
        *implicit* deadline equal to its period (Task.deadline_us default), so
        an overrunning job produces two legitimate misses — the late
        activation (completion path) and the skipped release (release path) —
        one count per missed activation, not a double count of one."""
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(15))

        task = rtos.create_task("overrun", priority=1, job_factory=job, period_us=ms(10))
        assert task.deadline_us == ms(10)
        rtos.start()
        sim.run_until(ms(19))
        assert task.stats.completions == 1
        assert task.stats.deadline_misses == 2

    def test_overrun_with_deadline_counts_each_activation_once(self):
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(15))

        task = rtos.create_task(
            "both", priority=1, job_factory=job, period_us=ms(10), deadline_us=ms(10)
        )
        rtos.start()
        sim.run_until(ms(19))
        # Two distinct missed activations: the job released at 0 finished at
        # 15 ms (late, +1 via the completion path) and the release at 10 ms
        # was skipped (+1 via the release path).  Exactly one count each —
        # the late job itself is NOT additionally counted by the skip path.
        assert task.stats.completions == 1
        assert task.stats.deadline_misses == 2


class TestContextSwitchOverhead:
    def test_overhead_added_on_switch(self):
        sim, rtos = make_scheduler(context_switch_us=500)
        finish = {}

        def job():
            yield Compute(ms(2))
            finish["t"] = sim.now

        task = rtos.create_task("t", priority=1, job_factory=job)
        rtos.start()
        rtos.activate(task)
        sim.run_until(ms(10))
        assert finish["t"] == ms(2) + 500


class TestBlocking:
    def test_delay_releases_cpu(self):
        sim, rtos = make_scheduler()
        order = []

        def sleeper():
            order.append(("sleep-start", sim.now))
            yield Delay(ms(5))
            order.append(("sleep-end", sim.now))

        def worker():
            yield Compute(ms(3))
            order.append(("worker-done", sim.now))

        s = rtos.create_task("sleeper", priority=5, job_factory=sleeper)
        w = rtos.create_task("worker", priority=1, job_factory=worker)
        rtos.start()
        rtos.activate(s)
        rtos.activate(w)
        sim.run_until(ms(20))
        assert ("worker-done", ms(3)) in order
        assert ("sleep-end", ms(5)) in order

    def test_blocking_receive_wakes_on_send(self):
        sim, rtos = make_scheduler()
        received = []
        queue = rtos.create_queue("q")

        def consumer():
            item = yield Receive(queue, None)
            received.append((item, sim.now))

        def producer():
            yield Compute(ms(4))
            yield Send(queue, "payload")

        c = rtos.create_task("consumer", priority=5, job_factory=consumer)
        p = rtos.create_task("producer", priority=1, job_factory=producer)
        rtos.start()
        rtos.activate(c)
        rtos.activate(p)
        sim.run_until(ms(20))
        assert received == [("payload", ms(4))]

    def test_blocking_receive_times_out(self):
        sim, rtos = make_scheduler()
        results = []
        queue = rtos.create_queue("q")

        def consumer():
            item = yield Receive(queue, ms(5))
            results.append((item, sim.now))

        task = rtos.create_task("consumer", priority=1, job_factory=consumer)
        rtos.start()
        rtos.activate(task)
        sim.run_until(ms(20))
        assert results == [(None, ms(5))]

    def test_nonblocking_receive_returns_none_immediately(self):
        sim, rtos = make_scheduler()
        results = []
        queue = rtos.create_queue("q")

        def consumer():
            item = yield Receive(queue, 0)
            results.append((item, sim.now))
            yield Compute(100)

        task = rtos.create_task("consumer", priority=1, job_factory=consumer)
        rtos.start()
        rtos.activate(task)
        sim.run_until(ms(5))
        assert results == [(None, 0)]

    def test_send_from_outside_task_context_wakes_waiter(self):
        sim, rtos = make_scheduler()
        received = []
        queue = rtos.create_queue("q")

        def consumer():
            item = yield Receive(queue, None)
            received.append((item, sim.now))

        task = rtos.create_task("consumer", priority=1, job_factory=consumer)
        rtos.start()
        rtos.activate(task)
        sim.schedule_at(ms(7), lambda: rtos.send_to_queue(queue, 99))
        sim.run_until(ms(20))
        assert received == [(99, ms(7))]

    def test_semaphore_take_and_give_across_tasks(self):
        sim, rtos = make_scheduler()
        order = []
        semaphore = make_binary_semaphore("lock", taken=True)

        def waiter():
            acquired = yield Take(semaphore, None)
            order.append(("acquired", acquired, sim.now))

        def releaser():
            yield Compute(ms(2))
            yield Give(semaphore)

        w = rtos.create_task("waiter", priority=5, job_factory=waiter)
        r = rtos.create_task("releaser", priority=1, job_factory=releaser)
        rtos.start()
        rtos.activate(w)
        rtos.activate(r)
        sim.run_until(ms(10))
        assert order == [("acquired", True, ms(2))]


class TestMisc:
    def test_duplicate_task_name_rejected(self):
        _, rtos = make_scheduler()
        rtos.create_task("t", priority=1, job_factory=lambda: iter(()))
        with pytest.raises(SchedulerError):
            rtos.create_task("t", priority=1, job_factory=lambda: iter(()))

    def test_unknown_directive_rejected(self):
        sim, rtos = make_scheduler()

        def bad_job():
            yield "not a directive"

        task = rtos.create_task("bad", priority=1, job_factory=bad_job)
        rtos.start()
        with pytest.raises(SchedulerError):
            rtos.activate(task)
            sim.run_until(ms(5))

    def test_cpu_utilization(self):
        sim, rtos = make_scheduler()

        def job():
            yield Compute(ms(5))

        rtos.create_task("busy", priority=1, job_factory=job, period_us=ms(10))
        rtos.start()
        sim.run_until(ms(100))
        assert rtos.cpu_utilization() == pytest.approx(0.5, abs=0.05)

    def test_cpu_utilization_with_nonzero_simulator_start(self):
        """Utilization divides by time elapsed since the scheduler started,
        so a simulator constructed at start_us > 0 must not under-report."""
        sim = Simulator(start_us=ms(1000))
        rtos = RTOSScheduler(sim)

        def job():
            yield Compute(ms(5))

        rtos.create_task("busy", priority=1, job_factory=job, period_us=ms(10))
        rtos.start()
        sim.run_until(ms(1100))
        assert rtos.cpu_utilization() == pytest.approx(0.5, abs=0.05)

    def test_cpu_utilization_ignores_pre_start_warmup(self):
        """Simulated time passing between construction and start() must not
        deflate utilization — elapsed time is anchored at start()."""
        sim = Simulator()
        rtos = RTOSScheduler(sim)

        def job():
            yield Compute(ms(5))

        rtos.create_task("busy", priority=1, job_factory=job, period_us=ms(10))
        sim.run_until(ms(1000))  # warm-up with the scheduler not yet started
        rtos.start()
        sim.run_until(ms(2000))
        assert rtos.cpu_utilization() == pytest.approx(0.5, abs=0.05)

    def test_cpu_utilization_zero_elapsed(self):
        sim = Simulator(start_us=ms(1000))
        rtos = RTOSScheduler(sim)
        assert rtos.cpu_utilization() == 0.0

    def test_get_task_by_name(self):
        _, rtos = make_scheduler()
        task = rtos.create_task("named", priority=2, job_factory=lambda: iter(()))
        assert rtos.get_task("named") is task
        with pytest.raises(KeyError):
            rtos.get_task("missing")
