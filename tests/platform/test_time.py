"""Unit tests for the simulated time base."""

import pytest

from repro.platform.kernel.time import (
    SimClock,
    format_us,
    ms,
    seconds,
    ticks_to_us,
    to_ms,
    to_seconds,
    us,
    us_to_ticks,
)


class TestConversions:
    def test_ms_converts_to_microseconds(self):
        assert ms(1) == 1_000
        assert ms(25) == 25_000
        assert ms(2.5) == 2_500

    def test_seconds_converts_to_microseconds(self):
        assert seconds(1) == 1_000_000
        assert seconds(0.25) == 250_000

    def test_us_is_identity(self):
        assert us(42) == 42

    def test_round_trip_ms(self):
        assert to_ms(ms(100)) == pytest.approx(100.0)

    def test_round_trip_seconds(self):
        assert to_seconds(seconds(4)) == pytest.approx(4.0)

    def test_model_tick_is_one_millisecond(self):
        assert ticks_to_us(1) == 1_000
        assert us_to_ticks(1_999) == 1
        assert us_to_ticks(2_000) == 2

    def test_format_small_values_in_ms(self):
        assert format_us(1500) == "1.500 ms"

    def test_format_large_values_in_seconds(self):
        assert format_us(2_000_000) == "2.000 s"


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5).now == 5

    def test_default_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advances_forward(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advancing_to_same_instant_is_allowed(self):
        clock = SimClock(10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_cannot_move_backwards(self):
        clock = SimClock(100)
        with pytest.raises(ValueError):
            clock.advance_to(99)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            SimClock(-1)
