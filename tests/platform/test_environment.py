"""Unit tests for the physical environment model (patient, syringe, caregiver)."""

import pytest

from repro.core.four_variables import EventKind, TraceRecorder
from repro.platform.environment import PatientEnvironment, PumpHardware, ReservoirModel
from repro.platform.kernel.simulator import Simulator
from repro.platform.kernel.time import ms, seconds


@pytest.fixture
def environment():
    simulator = Simulator()
    recorder = TraceRecorder(lambda: simulator.now)
    hardware = PumpHardware(simulator, recorder)
    return simulator, recorder, hardware, PatientEnvironment(simulator, hardware)


class TestStimulusInjection:
    def test_bolus_request_press_records_m_event(self, environment):
        simulator, recorder, hardware, env = environment
        env.schedule_bolus_request(ms(20))
        simulator.run_until(ms(30))
        events = recorder.trace.select(kind=EventKind.M, variable="m-BolusReq")
        assert [event.timestamp_us for event in events] == [ms(20)]

    def test_reservoir_empty_changes_sensor(self, environment):
        simulator, recorder, hardware, env = environment
        env.schedule_reservoir_empty(ms(50))
        simulator.run_until(ms(60))
        assert hardware.reservoir_sensor.physical_value is True
        assert env.reservoir.empty

    def test_reservoir_refill_clears_condition(self, environment):
        simulator, recorder, hardware, env = environment
        env.schedule_reservoir_empty(ms(10))
        env.schedule_reservoir_refill(ms(30), volume_ml=50.0)
        simulator.run_until(ms(40))
        assert hardware.reservoir_sensor.physical_value is False
        assert env.reservoir.volume_ml == 50.0

    def test_occlusion_and_door(self, environment):
        simulator, recorder, hardware, env = environment
        env.schedule_occlusion(ms(5))
        env.schedule_door_open(ms(6))
        simulator.run_until(ms(10))
        assert hardware.occlusion_sensor.physical_value is True
        assert hardware.door_sensor.physical_value is True

    def test_stimuli_are_logged(self, environment):
        simulator, recorder, hardware, env = environment
        env.schedule_bolus_request(ms(1))
        env.schedule_clear_alarm(ms(2))
        assert [item["kind"] for item in env.scheduled_stimuli] == [
            "bolus_request",
            "clear_alarm",
        ]


class TestClosedLoopDynamics:
    def test_motor_run_delivers_volume(self, environment):
        simulator, recorder, hardware, env = environment
        motor = hardware.pump_motor
        simulator.schedule_at(ms(10), lambda: motor.write(2))
        simulator.schedule_at(seconds(4), lambda: motor.write(0))
        simulator.run_until(seconds(5))
        assert env.bolus_count == 1
        record = env.deliveries[0]
        assert record.end_us is not None and record.end_us > record.start_us
        assert env.total_delivered_ml == pytest.approx(record.delivered_ml)
        assert record.delivered_ml > 0

    def test_reservoir_empties_after_enough_delivery(self, environment):
        simulator, recorder, hardware, env = environment
        env.reservoir.volume_ml = 0.05
        motor = hardware.pump_motor
        simulator.schedule_at(ms(10), lambda: motor.write(5))
        simulator.schedule_at(seconds(10), lambda: motor.write(0))
        simulator.run_until(seconds(11))
        assert env.reservoir.empty
        assert hardware.reservoir_sensor.physical_value is True


class TestReservoirModel:
    def test_drain_bounded_by_volume(self):
        reservoir = ReservoirModel(volume_ml=1.0, ml_per_second_per_speed=1.0)
        delivered = reservoir.drain(speed=10, duration_s=10)
        assert delivered == pytest.approx(1.0)
        assert reservoir.empty

    def test_partial_drain(self):
        reservoir = ReservoirModel(volume_ml=100.0, ml_per_second_per_speed=0.05)
        delivered = reservoir.drain(speed=1, duration_s=4)
        assert delivered == pytest.approx(0.2)
        assert reservoir.volume_ml == pytest.approx(99.8)


class TestPumpHardware:
    def test_device_inventory(self, environment):
        _, _, hardware, _ = environment
        assert len(hardware.input_devices) == 5
        assert len(hardware.output_devices) == 3

    def test_start_is_idempotent(self, environment):
        simulator, _, hardware, _ = environment
        hardware.start()
        hardware.start()
        simulator.run_until(ms(5))  # no duplicate-sampling explosion
