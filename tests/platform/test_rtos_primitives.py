"""Unit tests for RTOS queues and semaphores."""

import pytest

from repro.platform.kernel.simulator import Simulator
from repro.platform.rtos.queue import MessageQueue
from repro.platform.rtos.semaphore import Semaphore, make_binary_semaphore, make_mutex


class TestMessageQueue:
    def test_fifo_order(self):
        queue = MessageQueue("q")
        queue.send(1)
        queue.send(2)
        queue.send(3)
        assert queue.drain() == [1, 2, 3]

    def test_receive_empty_returns_none(self):
        queue = MessageQueue("q")
        assert queue.receive_nowait() is None

    def test_bounded_queue_drops_when_full(self):
        queue = MessageQueue("q", capacity=2)
        assert queue.send("a")
        assert queue.send("b")
        assert not queue.send("c")
        assert queue.stats.dropped == 1
        assert len(queue) == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MessageQueue("q", capacity=0)

    def test_stats_counters(self):
        queue = MessageQueue("q")
        queue.send(1)
        queue.send(2)
        queue.receive_nowait()
        assert queue.stats.sent == 2
        assert queue.stats.received == 1
        assert queue.stats.max_depth == 2

    def test_residence_time_uses_simulator_clock(self):
        sim = Simulator()
        queue = MessageQueue("q", simulator=sim)
        queue.send("item")
        sim.schedule_at(1000, lambda: queue.receive_nowait())
        sim.run()
        assert queue.stats.total_residence_us == 1000
        assert queue.stats.mean_residence_us == 1000

    def test_clear_discards_without_counting(self):
        queue = MessageQueue("q")
        queue.send(1)
        queue.clear()
        assert queue.empty
        assert queue.stats.received == 0

    def test_waiter_registration(self):
        queue = MessageQueue("q")
        queue.add_waiter("w1")
        queue.add_waiter("w2")
        assert queue.has_waiters
        assert queue.pop_waiter() == "w1"
        queue.remove_waiter("w2")
        assert not queue.has_waiters


class TestSemaphore:
    def test_try_take_and_give(self):
        semaphore = Semaphore("s", initial=1)
        assert semaphore.try_take()
        assert not semaphore.try_take()
        assert semaphore.give()
        assert semaphore.available

    def test_counting_behaviour(self):
        semaphore = Semaphore("s", initial=2, maximum=2)
        assert semaphore.try_take()
        assert semaphore.try_take()
        assert not semaphore.try_take()
        assert semaphore.contentions == 1

    def test_give_beyond_maximum_refused(self):
        semaphore = Semaphore("s", initial=1, maximum=1)
        assert not semaphore.give()

    def test_binary_semaphore_taken(self):
        semaphore = make_binary_semaphore("s", taken=True)
        assert not semaphore.available
        assert semaphore.give()
        assert semaphore.available

    def test_mutex_starts_available(self):
        assert make_mutex("m").available

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore("s", initial=-1)

    def test_invalid_maximum_rejected(self):
        with pytest.raises(ValueError):
            Semaphore("s", initial=2, maximum=1)
