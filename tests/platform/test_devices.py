"""Unit tests for the simulated devices (sensors, actuators, drivers)."""

import pytest

from repro.core.four_variables import EventKind
from repro.platform.devices.actuators import Buzzer, PumpMotor
from repro.platform.devices.device import EventInputDevice, OutputDevice, StateInputDevice
from repro.platform.devices.sensors import BolusRequestButton, ReservoirLevelSensor
from repro.platform.kernel.random import constant
from repro.platform.kernel.time import ms


class TestEventInputDevice:
    def test_trigger_records_m_event(self, simulator, recorder):
        device = EventInputDevice(
            "btn", "m-Button", simulator, recorder, sampling_period_us=ms(2),
            conversion_latency=constant(0),
        )
        simulator.schedule_at(ms(5), lambda: device.trigger(True))
        simulator.run_until(ms(6))
        events = recorder.trace.select(kind=EventKind.M, variable="m-Button")
        assert len(events) == 1
        assert events[0].timestamp_us == ms(5)
        assert events[0].value is True

    def test_edge_latched_until_sampled(self, simulator, recorder):
        device = EventInputDevice(
            "btn", "m-Button", simulator, recorder, sampling_period_us=ms(10),
            conversion_latency=constant(500),
        )
        device.start()
        simulator.schedule_at(ms(3), lambda: device.trigger(True))
        simulator.run_until(ms(25))
        events = device.poll()
        assert len(events) == 1
        # Edge at 3 ms is picked up by the sample at 10 ms plus 0.5 ms latency.
        assert events[0].physical_timestamp_us == ms(3)
        assert events[0].detected_timestamp_us == ms(10) + 500

    def test_poll_drains_buffer(self, simulator, recorder):
        device = EventInputDevice(
            "btn", "m-Button", simulator, recorder, sampling_period_us=ms(2),
            conversion_latency=constant(0),
        )
        device.start()
        simulator.schedule_at(ms(1), lambda: device.trigger(True))
        simulator.run_until(ms(5))
        assert len(device.poll()) == 1
        assert device.poll() == []

    def test_buffer_overflow_counts_missed_events(self, simulator, recorder):
        device = EventInputDevice(
            "btn", "m-Button", simulator, recorder, sampling_period_us=ms(1),
            conversion_latency=constant(0), buffer_capacity=2,
        )
        device.start()
        for index in range(4):
            simulator.schedule_at(ms(index + 1), lambda: device.trigger(True))
        simulator.run_until(ms(10))
        assert device.pending_count == 2
        assert device.missed_events == 2

    def test_invalid_sampling_period_rejected(self, simulator, recorder):
        with pytest.raises(ValueError):
            EventInputDevice("btn", "m-B", simulator, recorder, sampling_period_us=0)


class TestStateInputDevice:
    def test_physical_change_records_m_event(self, simulator, recorder):
        device = StateInputDevice(
            "level", "m-Empty", simulator, recorder, sampling_period_us=ms(10),
            conversion_latency=constant(0),
        )
        simulator.schedule_at(ms(4), lambda: device.set_physical(True))
        simulator.run_until(ms(5))
        events = recorder.trace.select(kind=EventKind.M, variable="m-Empty")
        assert [event.value for event in events] == [True]

    def test_unchanged_value_not_recorded(self, simulator, recorder):
        device = StateInputDevice(
            "level", "m-Empty", simulator, recorder, sampling_period_us=ms(10),
            initial_value=False,
        )
        device.set_physical(False)
        assert len(recorder.trace) == 0

    def test_read_returns_latched_sample(self, simulator, recorder):
        device = StateInputDevice(
            "level", "m-Empty", simulator, recorder, sampling_period_us=ms(10),
            conversion_latency=constant(ms(1)),
        )
        device.start()
        simulator.schedule_at(ms(12), lambda: device.set_physical(True))
        # Before the next sample+latency the latched value is still False.
        simulator.run_until(ms(19))
        assert device.read() is False
        simulator.run_until(ms(22))
        assert device.read() is True


class TestOutputDevice:
    def test_write_records_c_event_after_latency(self, simulator, recorder):
        device = OutputDevice(
            "motor", "c-Motor", simulator, recorder, actuation_latency=constant(ms(3)),
        )
        simulator.schedule_at(ms(10), lambda: device.write(1))
        simulator.run_until(ms(20))
        events = recorder.trace.select(kind=EventKind.C, variable="c-Motor")
        assert len(events) == 1
        assert events[0].timestamp_us == ms(13)
        assert device.physical_value == 1

    def test_unchanged_write_produces_no_c_event(self, simulator, recorder):
        device = OutputDevice("motor", "c-Motor", simulator, recorder, initial_value=0)
        simulator.schedule_at(ms(1), lambda: device.write(0))
        simulator.run_until(ms(5))
        assert recorder.trace.select(kind=EventKind.C) == []
        assert device.writes == 1

    def test_observer_called_on_physical_change(self, simulator, recorder):
        device = OutputDevice("motor", "c-Motor", simulator, recorder, actuation_latency=constant(0))
        seen = []
        device.add_observer(lambda value, at: seen.append((value, at)))
        simulator.schedule_at(ms(2), lambda: device.write(5))
        simulator.run_until(ms(3))
        assert seen == [(5, ms(2))]

    def test_commanded_vs_physical_value(self, simulator, recorder):
        device = OutputDevice("motor", "c-Motor", simulator, recorder, actuation_latency=constant(ms(5)))
        simulator.schedule_at(ms(1), lambda: device.write(7))
        simulator.run_until(ms(2))
        assert device.commanded_value == 7
        assert device.physical_value == 0


class TestConcreteDevices:
    def test_bolus_button_default_variable(self, simulator, recorder):
        button = BolusRequestButton(simulator, recorder)
        assert button.monitored_variable == "m-BolusReq"

    def test_reservoir_sensor_default_variable(self, simulator, recorder):
        sensor = ReservoirLevelSensor(simulator, recorder)
        assert sensor.monitored_variable == "m-EmptyReservoir"

    def test_pump_motor_running_property(self, simulator, recorder):
        motor = PumpMotor(simulator, recorder, actuation_latency=constant(0))
        assert not motor.running
        simulator.schedule_at(ms(1), lambda: motor.write(3))
        simulator.run_until(ms(2))
        assert motor.running

    def test_buzzer_controlled_variable(self, simulator, recorder):
        assert Buzzer(simulator, recorder).controlled_variable == "c-Buzzer"
