"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.platform.kernel.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(30, lambda: fired.append("c"))
        sim.schedule_at(10, lambda: fired.append("a"))
        sim.schedule_at(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_priority_then_fifo_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: fired.append("low"), priority=5)
        sim.schedule_at(10, lambda: fired.append("first"), priority=0)
        sim.schedule_at(10, lambda: fired.append("second"), priority=0)
        sim.run()
        assert fired == ["first", "second", "low"]

    def test_relative_schedule_uses_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(10, lambda: sim.schedule(5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [15]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule_at(123, lambda: None)
        sim.run()
        assert sim.now == 123

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(50, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(10, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(10, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled and not handle.fired

    def test_cancel_twice_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()
        assert not handle.fired

    def test_pending_flag(self):
        sim = Simulator()
        handle = sim.schedule_at(10, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending and handle.fired

    def test_pending_events_counter_tracks_cancellations(self):
        sim = Simulator()
        handles = [sim.schedule_at(10 * i, lambda: None) for i in range(1, 6)]
        assert sim.pending_events == 5
        handles[0].cancel()
        handles[2].cancel()
        assert sim.pending_events == 3
        handles[2].cancel()  # double-cancel must not double-count
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 3

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        sim = Simulator()
        handle = sim.schedule_at(10, lambda: None)
        sim.schedule_at(20, lambda: None)
        sim.run_until(15)
        handle.cancel()  # already fired: a no-op
        assert not handle.cancelled
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_heap_compaction_reclaims_cancelled_entries(self):
        sim = Simulator()
        cancelled = [sim.schedule_at(1_000_000 + i, lambda: None) for i in range(200)]
        keeper_fired = []
        sim.schedule_at(500, lambda: keeper_fired.append(sim.now))
        for handle in cancelled:
            handle.cancel()
        # Cancelled entries dominated the heap, so compaction dropped them
        # without waiting for their pop.
        assert len(sim._queue) < 100
        assert sim.pending_events == 1
        sim.run()
        assert keeper_fired == [500]
        assert sim.pending_events == 0


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: fired.append(10))
        sim.schedule_at(20, lambda: fired.append(20))
        sim.schedule_at(30, lambda: fired.append(30))
        sim.run_until(20)
        assert fired == [10, 20]
        assert sim.now == 20

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(500)
        assert sim.now == 500

    def test_run_until_then_continue(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: fired.append(10))
        sim.schedule_at(40, lambda: fired.append(40))
        sim.run_until(20)
        sim.run_until(50)
        assert fired == [10, 40]

    def test_run_until_past_target_raises(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimulationError):
            sim.run_until(50)


class TestRunBounds:
    def test_run_raises_on_livelock(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0, reschedule)

        sim.schedule(0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_stop_requests_halt(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: (fired.append(10), sim.stop()))
        sim.schedule_at(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10]
