"""Unit tests for deterministic randomness and jitter models."""

import pytest

from repro.platform.kernel.random import JitterModel, RandomSource, constant, uniform


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42).stream("exec")
        b = RandomSource(42).stream("exec")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_independent_streams(self):
        source = RandomSource(42)
        a = source.stream("exec")
        b = source.stream("sensor")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1).stream("exec")
        b = RandomSource(2).stream("exec")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = RandomSource(7).fork("child").stream("x")
        b = RandomSource(7).fork("child").stream("x")
        assert a.random() == b.random()

    def test_fork_is_independent_of_sibling_forks(self):
        """A fork's streams depend only on (seed, fork name) — creating other
        forks or streams first must not perturb them (the fault models rely
        on this to compose without cross-talk)."""
        source = RandomSource(7)
        untouched = [source.fork("faults").stream("x").random() for _ in range(3)]
        source2 = RandomSource(7)
        source2.fork("other")          # sibling fork created first
        source2.stream("exec").random()  # and a consumed sibling stream
        perturbed = [source2.fork("faults").stream("x").random() for _ in range(3)]
        assert untouched == perturbed

    def test_fork_differs_from_parent_and_other_forks(self):
        source = RandomSource(7)
        parent = source.stream("x").random()
        child_a = source.fork("a").stream("x").random()
        child_b = source.fork("b").stream("x").random()
        assert len({parent, child_a, child_b}) == 3

    def test_streams_are_independent_of_draw_order(self):
        """Draws on one named stream never affect a differently named one."""
        source = RandomSource(13)
        expected = source.stream("b").random()
        source2 = RandomSource(13)
        drained = source2.stream("a")
        for _ in range(100):
            drained.random()
        assert source2.stream("b").random() == expected

    def test_nested_forks_are_deterministic(self):
        a = RandomSource(5).fork("outer").fork("inner").stream("x").random()
        b = RandomSource(5).fork("outer").fork("inner").stream("x").random()
        assert a == b


class TestJitterModel:
    def test_constant_returns_nominal(self):
        model = constant(500)
        assert model.sample() == 500
        assert model.sample(None) == 500

    def test_without_rng_returns_nominal_even_with_bounds(self):
        model = uniform(1000, 200)
        assert model.sample(None) == 1000

    def test_sample_stays_within_bounds(self):
        model = uniform(1000, 200)
        rng = RandomSource(3).stream("jitter")
        for _ in range(200):
            value = model.sample(rng)
            assert 800 <= value <= 1200

    def test_sample_never_negative(self):
        model = JitterModel(nominal_us=50, plus_us=0, minus_us=200)
        rng = RandomSource(3).stream("jitter")
        assert all(model.sample(rng) >= 0 for _ in range(100))

    def test_worst_and_best_case(self):
        model = JitterModel(nominal_us=1000, plus_us=300, minus_us=400)
        assert model.worst_case_us == 1300
        assert model.best_case_us == 600

    def test_best_case_clamped_at_zero(self):
        model = JitterModel(nominal_us=100, minus_us=500)
        assert model.best_case_us == 0

    def test_scaled(self):
        model = JitterModel(nominal_us=1000, plus_us=100, minus_us=100)
        scaled = model.scaled(2.0)
        assert scaled.nominal_us == 2000
        assert scaled.plus_us == 200

    def test_scaled_by_zero_is_a_valid_constant_zero(self):
        scaled = JitterModel(nominal_us=1000, plus_us=300, minus_us=200).scaled(0.0)
        assert (scaled.nominal_us, scaled.plus_us, scaled.minus_us) == (0, 0, 0)
        assert scaled.sample() == 0
        assert scaled.worst_case_us == 0 and scaled.best_case_us == 0

    def test_scaled_below_one_rounds_to_nearest_microsecond(self):
        model = JitterModel(nominal_us=1001, plus_us=5, minus_us=3)
        scaled = model.scaled(0.5)
        # Banker's-free nearest rounding: 500.5 -> 500 (Python round-half-even),
        # 2.5 -> 2, 1.5 -> 2; the invariants below pin the exact values.
        assert scaled.nominal_us == round(1001 * 0.5)
        assert scaled.plus_us == round(5 * 0.5)
        assert scaled.minus_us == round(3 * 0.5)

    def test_scaled_result_keeps_bounds_non_negative(self):
        """Scaling must never manufacture negative durations or bounds — the
        scaled model has to satisfy JitterModel's own constructor invariants."""
        model = JitterModel(nominal_us=7, plus_us=3, minus_us=9)
        for factor in (0.0, 0.1, 0.49, 0.5, 1.0, 2.5):
            scaled = model.scaled(factor)
            assert scaled.nominal_us >= 0
            assert scaled.plus_us >= 0
            assert scaled.minus_us >= 0
            assert scaled.best_case_us >= 0

    def test_scaled_tiny_factor_collapses_small_bounds_to_zero(self):
        scaled = JitterModel(nominal_us=1, plus_us=1, minus_us=1).scaled(0.4)
        assert (scaled.nominal_us, scaled.plus_us, scaled.minus_us) == (0, 0, 0)
        assert scaled.sample() == 0

    def test_negative_nominal_rejected(self):
        with pytest.raises(ValueError):
            JitterModel(nominal_us=-1)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            constant(100).scaled(-1)
