"""Unit tests for deterministic randomness and jitter models."""

import pytest

from repro.platform.kernel.random import JitterModel, RandomSource, constant, uniform


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(42).stream("exec")
        b = RandomSource(42).stream("exec")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_independent_streams(self):
        source = RandomSource(42)
        a = source.stream("exec")
        b = source.stream("sensor")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1).stream("exec")
        b = RandomSource(2).stream("exec")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = RandomSource(7).fork("child").stream("x")
        b = RandomSource(7).fork("child").stream("x")
        assert a.random() == b.random()


class TestJitterModel:
    def test_constant_returns_nominal(self):
        model = constant(500)
        assert model.sample() == 500
        assert model.sample(None) == 500

    def test_without_rng_returns_nominal_even_with_bounds(self):
        model = uniform(1000, 200)
        assert model.sample(None) == 1000

    def test_sample_stays_within_bounds(self):
        model = uniform(1000, 200)
        rng = RandomSource(3).stream("jitter")
        for _ in range(200):
            value = model.sample(rng)
            assert 800 <= value <= 1200

    def test_sample_never_negative(self):
        model = JitterModel(nominal_us=50, plus_us=0, minus_us=200)
        rng = RandomSource(3).stream("jitter")
        assert all(model.sample(rng) >= 0 for _ in range(100))

    def test_worst_and_best_case(self):
        model = JitterModel(nominal_us=1000, plus_us=300, minus_us=400)
        assert model.worst_case_us == 1300
        assert model.best_case_us == 600

    def test_best_case_clamped_at_zero(self):
        model = JitterModel(nominal_us=100, minus_us=500)
        assert model.best_case_us == 0

    def test_scaled(self):
        model = JitterModel(nominal_us=1000, plus_us=100, minus_us=100)
        scaled = model.scaled(2.0)
        assert scaled.nominal_us == 2000
        assert scaled.plus_us == 200

    def test_negative_nominal_rejected(self):
        with pytest.raises(ValueError):
            JitterModel(nominal_us=-1)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            constant(100).scaled(-1)
