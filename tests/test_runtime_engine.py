"""Equivalence tests for the rebuilt runtime engine.

The hot-loop rebuild (batched kernel dispatch, columnar traces, the compiled-C
SUT backend) claims *byte identity*: same seeds, same serialized reports, bit
for bit.  These tests prove it against the frozen seed implementations in
``repro._reference.seed_engine`` and against the Python CODE(M) executor:

* whole R-/M-test runs on every requirement scenario × all three schemes,
  comparing ``to_json`` output (with full traces) across engines;
* kernel dispatch order under adversarial scheduling (same-instant
  insertions from callbacks, priorities, cancellations, interleaved
  ``run_until``/``run``);
* columnar ``Trace`` vs the object-per-event ``SeedTrace`` across the whole
  query surface on randomized event streams;
* the compiled-C backend in lockstep with the Python executor and across
  whole scheme runs (skipped without a host C compiler), plus its graceful
  degradation path and the backend field's serialization/key stability.
"""

from __future__ import annotations

import json
import random

import pytest

from repro._reference import SEED_ENGINE
from repro._reference.seed_engine import SeedSimulator, SeedTrace
from repro.campaign.results import RunRecord
from repro.campaign.spec import RunSpec
from repro.campaign.worker import execute_run
from repro.codegen import c_backend
from repro.codegen.c_backend import (
    BackendUnavailable,
    CompiledGeneratedCode,
    check_compilable,
    find_c_compiler,
    resolve_backend,
)
from repro.codegen.generated import GeneratedCode
from repro.codegen.generator import generate_code
from repro.core.four_variables import Event, EventKind, Trace, TraceRecorder
from repro.core.m_testing import MTestAnalyzer
from repro.core.r_testing import execute_r_test
from repro.core.serialization import m_report_to_dict, r_report_to_json
from repro.gpca.interface import build_pump_interface
from repro.gpca.model import build_fig2_statechart
from repro.gpca.pump import ALL_SCHEMES, build_scheme_system
from repro.gpca.scenarios import all_requirement_test_cases
from repro.platform.kernel.simulator import SimulationError, Simulator
from repro.store.keys import run_key

requires_cc = pytest.mark.skipif(
    find_c_compiler() is None, reason="no host C compiler available"
)

#: Small sample counts keep the full cross-product affordable; identity either
#: holds on every event or it doesn't.
SAMPLES = 2
CASES = all_requirement_test_cases(SAMPLES, seed=0)
CASE_IDS = [case.name for case in CASES]


def _run_case(case, scheme, *, engine=None, code_factory=None):
    def factory():
        return build_scheme_system(
            scheme, seed=1234, engine=engine, code_factory=code_factory
        )

    return execute_r_test(factory, case)


class TestReportByteIdentity:
    """Whole-run byte identity: optimised engine vs the frozen seed engine."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_r_reports_identical(self, scheme, case):
        optimised = _run_case(case, scheme)
        seed_path = _run_case(case, scheme, engine=SEED_ENGINE)
        assert r_report_to_json(optimised, include_trace=True) == r_report_to_json(
            seed_path, include_trace=True
        )

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
    def test_m_reports_identical(self, scheme, case):
        optimised = _run_case(case, scheme)
        seed_path = _run_case(case, scheme, engine=SEED_ENGINE)
        analyzer = MTestAnalyzer(build_pump_interface(), case.requirement)
        assert m_report_to_dict(
            analyzer.analyze(optimised.trace, sut_name=optimised.sut_name)
        ) == m_report_to_dict(
            analyzer.analyze(seed_path.trace, sut_name=seed_path.sut_name)
        )


class TestKernelDispatchOrder:
    """The batched kernel fires the exact sequence the seed kernel fires."""

    @staticmethod
    def _drive(simulator_class, seed):
        """Adversarial workload: callbacks insert same-instant higher-priority
        events, cancel pending handles, and the horizon advances in chunks."""
        simulator = simulator_class()
        rng = random.Random(seed)
        fired = []
        pending = []
        counter = [0]

        def make_callback():
            counter[0] += 1
            identity = counter[0]

            def callback():
                fired.append((simulator.now, identity))
                for _ in range(rng.randrange(0, 3)):
                    delay = rng.choice([0, 0, 1, 7, 130])
                    priority = rng.randrange(-2, 3)
                    pending.append(
                        simulator.schedule(
                            delay, make_callback(), priority=priority, label="gen"
                        )
                    )
                if pending and rng.random() < 0.35:
                    pending[rng.randrange(len(pending))].cancel()

            return callback

        for _ in range(25):
            pending.append(
                simulator.schedule(
                    rng.randrange(0, 400),
                    make_callback(),
                    priority=rng.randrange(-2, 3),
                    label="root",
                )
            )
        horizon = 0
        for _ in range(6):
            horizon += rng.randrange(50, 300)
            simulator.run_until(horizon)
            fired.append(("clock", simulator.now))
        simulator.run(max_events=100_000)
        fired.append(("final", simulator.now, simulator.events_processed))
        return fired

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_dispatch_sequence_matches_seed_kernel(self, seed):
        assert self._drive(Simulator, seed) == self._drive(SeedSimulator, seed)

    def test_livelock_guard_matches_seed_kernel(self):
        def build(simulator_class):
            simulator = simulator_class()

            def rearm():
                simulator.schedule(0, rearm)

            simulator.schedule(0, rearm)
            return simulator

        for simulator_class in (Simulator, SeedSimulator):
            with pytest.raises(SimulationError):
                build(simulator_class).run(max_events=100)


def _random_events(seed, count=400):
    rng = random.Random(seed)
    kinds = list(EventKind)
    variables = ["m-A", "m-B", "c-X", "i-A", "o-X", "t1"]
    timestamp = 0
    events = []
    for _ in range(count):
        timestamp += rng.choice([0, 0, 1, 3, 50])
        meta = {"n": rng.randrange(3)} if rng.random() < 0.3 else {}
        events.append(
            Event(rng.choice(kinds), rng.choice(variables), rng.randrange(4), timestamp, meta)
        )
    return events


class TestColumnarTraceEquivalence:
    """Columnar Trace answers every query exactly like the seed trace."""

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_query_surface_matches_seed_trace(self, seed):
        events = _random_events(seed)
        columnar = Trace(events)
        reference = SeedTrace(events)
        assert len(columnar) == len(reference)
        assert list(columnar) == list(reference)
        assert list(columnar.events) == list(reference.events)
        assert columnar.duration_us == reference.duration_us
        assert columnar[0] == reference[0]
        assert columnar[-1] == reference[-1]
        assert columnar[10:20] == reference[10:20]
        final = events[-1].timestamp_us
        windows = [(None, None), (0, final // 2), (final // 3, final), (final + 1, None)]
        for after_us, before_us in windows:
            for kind in (None, EventKind.M, EventKind.C):
                for variable in (None, "m-A", "c-X", "missing"):
                    assert columnar.select(
                        kind, variable, after_us=after_us, before_us=before_us
                    ) == reference.select(
                        kind, variable, after_us=after_us, before_us=before_us
                    )
                    assert columnar.first(
                        kind, variable, after_us=after_us, before_us=before_us
                    ) == reference.first(
                        kind, variable, after_us=after_us, before_us=before_us
                    )
            assert columnar.select_kinds(
                [EventKind.M, EventKind.C], after_us=after_us, before_us=before_us
            ) == reference.select_kinds(
                [EventKind.M, EventKind.C], after_us=after_us, before_us=before_us
            )
        for kind in (EventKind.M, EventKind.C):
            for variable in ("m-A", "c-X"):
                assert columnar.value_changes(kind, variable) == reference.value_changes(
                    kind, variable
                )
        assert list(columnar.restricted_to([EventKind.M, EventKind.C])) == list(
            reference.restricted_to([EventKind.M, EventKind.C])
        )

    def test_recorder_fast_path_equals_object_path(self):
        clock = {"value": 0}
        recorder = TraceRecorder(lambda: clock["value"])
        recorder.record_m("m-A", True, device="button")
        clock["value"] = 10
        recorder.record_i("i-A", True)
        recorder.record_o("o-X", 1)
        recorder.record_c("c-X", 1, device="motor")
        recorder.record_transition_start("t1")
        recorder.record_transition_end("t1")
        raw = list(recorder.trace)
        rebuilt = Trace(raw)
        assert list(rebuilt) == raw
        assert recorder.trace.select(EventKind.C)[0].meta == {"device": "motor"}
        # Materialised events are cached: repeated access returns the object.
        assert recorder.trace[0] is recorder.trace[0]

    def test_out_of_order_append_rejected_on_both_paths(self):
        trace = Trace()
        trace._append_raw(EventKind.M, "m-A", 1, 100, None)
        with pytest.raises(ValueError):
            trace._append_raw(EventKind.M, "m-A", 1, 99, None)
        with pytest.raises(ValueError):
            trace.append(Event(EventKind.M, "m-A", 1, 50))


@pytest.fixture(scope="module")
def fig2_artifacts():
    return generate_code(build_fig2_statechart())


class TestCompiledBackend:
    """The compiled-C executor is observably identical to the Python one."""

    @requires_cc
    def test_lockstep_with_python_executor(self, fig2_artifacts):
        python_code = GeneratedCode(fig2_artifacts.code_model)
        compiled = CompiledGeneratedCode(fig2_artifacts.code_model)
        rng = random.Random(7)
        inputs = fig2_artifacts.code_model.input_names
        for _ in range(300):
            action = rng.randrange(3)
            if action == 0:
                name = rng.choice(inputs)
                python_code.set_input(name)
                compiled.set_input(name)
            elif action == 1:
                ticks = rng.choice([1, 5, 40])
                python_code.advance_clock(ticks)
                compiled.advance_clock(ticks)
            else:
                python_row = python_code.enabled_transition()
                compiled_row = compiled.enabled_transition()
                assert (python_row is None) == (compiled_row is None)
                if python_row is not None:
                    assert python_row.index == compiled_row.index
                python_firings = python_code.scan()
                compiled_firings = compiled.scan()
                assert [f.transition.index for f in python_firings] == [
                    f.transition.index for f in compiled_firings
                ]
                assert [f.writes for f in python_firings] == [
                    f.writes for f in compiled_firings
                ]
            assert python_code.state_index == compiled.state_index
            assert python_code.state_clock_ticks == compiled.state_clock_ticks
            assert python_code.outputs == compiled.outputs
            assert python_code.inputs == compiled.inputs
            compiled.crosscheck()

    @requires_cc
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_scheme_runs_byte_identical(self, scheme, fig2_artifacts):
        resolution = resolve_backend("c", fig2_artifacts)
        assert resolution.effective == "c" and resolution.reason is None
        case = CASES[0]
        compiled_report = _run_case(case, scheme, code_factory=resolution.code_factory)
        python_report = _run_case(case, scheme)
        assert r_report_to_json(compiled_report, include_trace=True) == r_report_to_json(
            python_report, include_trace=True
        )

    @requires_cc
    def test_worker_records_effective_c_backend(self):
        spec = RunSpec(
            index=0, scheme=1, case="bolus-request", samples=SAMPLES,
            case_seed=7, sut_seed=11, m_test="none", backend="c",
        )
        record = execute_run(spec)
        assert record.backend_payload == {"requested": "c", "effective": "c"}
        python_record = execute_run(
            RunSpec(
                index=0, scheme=1, case="bolus-request", samples=SAMPLES,
                case_seed=7, sut_seed=11, m_test="none",
            )
        )
        assert record.r_payload == python_record.r_payload

    def test_degrades_cleanly_without_compiler(self, monkeypatch, fig2_artifacts):
        def unavailable(model, compiler=None):
            raise BackendUnavailable("no C compiler found on PATH (tried cc, gcc, clang)")

        monkeypatch.setattr(c_backend, "compile_harness", unavailable)
        resolution = resolve_backend("c", fig2_artifacts)
        assert resolution.requested == "c"
        assert resolution.effective == "python"
        assert "no C compiler" in resolution.reason
        assert resolution.code_factory is None

    def test_degradation_recorded_in_run_record(self, monkeypatch):
        def unavailable(model, compiler=None):
            raise BackendUnavailable("no C compiler found on PATH (tried cc, gcc, clang)")

        monkeypatch.setattr(c_backend, "compile_harness", unavailable)
        spec = RunSpec(
            index=0, scheme=1, case="bolus-request", samples=SAMPLES,
            case_seed=7, sut_seed=11, m_test="none", backend="c",
        )
        record = execute_run(spec)
        assert record.backend_payload["effective"] == "python"
        assert "no C compiler" in record.backend_payload["reason"]
        # The degraded run still produced the canonical Python-path payload.
        python_record = execute_run(
            RunSpec(
                index=0, scheme=1, case="bolus-request", samples=SAMPLES,
                case_seed=7, sut_seed=11, m_test="none",
            )
        )
        assert record.r_payload == python_record.r_payload
        # And the payload round-trips with the backend field intact.
        assert RunRecord.from_dict(record.to_dict()).to_dict() == record.to_dict()

    def test_unknown_backend_rejected(self, fig2_artifacts):
        with pytest.raises(ValueError):
            resolve_backend("fortran", fig2_artifacts)

    def test_charts_with_guards_are_rejected(self, fig2_artifacts):
        import dataclasses

        model = fig2_artifacts.code_model
        assert check_compilable(model) is None
        guarded = dataclasses.replace(model.transitions[0], guard=lambda context: True)
        patched = dataclasses.replace(
            model, transitions=[guarded] + list(model.transitions[1:])
        )
        reason = check_compilable(patched)
        assert reason is not None and "guard" in reason


class TestBackendSpecStability:
    """The backend field never perturbs pre-backend serialized forms or keys."""

    def _spec(self, **overrides):
        fields = dict(
            index=3, scheme=2, case="bolus-request", samples=4, case_seed=5, sut_seed=6
        )
        fields.update(overrides)
        return RunSpec(**fields)

    def test_default_backend_omitted_from_dict(self):
        payload = self._spec().to_dict()
        assert "backend" not in payload
        assert RunSpec.from_dict(payload).backend == "python"

    def test_c_backend_round_trips(self):
        payload = self._spec(backend="c").to_dict()
        assert payload["backend"] == "c"
        assert RunSpec.from_dict(payload) == self._spec(backend="c")

    def test_store_keys_stable_for_python_and_distinct_for_c(self):
        default_key = run_key(self._spec())
        explicit_python = run_key(self._spec(backend="python"))
        compiled = run_key(self._spec(backend="c"))
        assert default_key == explicit_python
        assert compiled != default_key
        # Keys ignore grid position, with or without the backend field.
        assert run_key(self._spec(index=99)) == default_key
        assert run_key(self._spec(index=99, backend="c")) == compiled
