"""Unit tests for environment assumptions and scenario generation."""

import pytest

from repro.model.composition import EnvironmentAssumptions, ScenarioGenerator
from repro.platform.kernel.random import RandomSource


@pytest.fixture
def assumptions():
    return EnvironmentAssumptions(
        allowed_events=("i-BolusReq", "i-ClearAlarm"),
        min_separation_ticks=100,
        event_min_gap_ticks={"i-BolusReq": 4200},
    )


class TestAssumptions:
    def test_gap_for_uses_largest_constraint(self, assumptions):
        assert assumptions.gap_for("i-BolusReq") == 4200
        assert assumptions.gap_for("i-ClearAlarm") == 100

    def test_permits_valid_schedule(self, assumptions):
        schedule = [(0, "i-BolusReq"), (5000, "i-BolusReq")]
        assert assumptions.permits(schedule)

    def test_rejects_unknown_event(self, assumptions):
        assert not assumptions.permits([(0, "i-Nope")])

    def test_rejects_global_separation_violation(self, assumptions):
        assert not assumptions.permits([(0, "i-BolusReq"), (50, "i-ClearAlarm")])

    def test_rejects_per_event_gap_violation(self, assumptions):
        assert not assumptions.permits([(0, "i-BolusReq"), (1000, "i-BolusReq")])

    def test_must_allow_at_least_one_event(self):
        with pytest.raises(ValueError):
            EnvironmentAssumptions(allowed_events=())


class TestScenarioGenerator:
    def test_periodic_schedule(self, assumptions):
        generator = ScenarioGenerator(assumptions)
        schedule = generator.periodic("i-BolusReq", count=3, period_ticks=5000, start_tick=10)
        assert schedule == [(10, "i-BolusReq"), (5010, "i-BolusReq"), (10010, "i-BolusReq")]
        assert assumptions.permits(schedule)

    def test_periodic_below_gap_rejected(self, assumptions):
        generator = ScenarioGenerator(assumptions)
        with pytest.raises(ValueError):
            generator.periodic("i-BolusReq", count=3, period_ticks=1000)

    def test_randomized_is_deterministic_for_seed(self, assumptions):
        a = ScenarioGenerator(assumptions, RandomSource(5)).randomized("i-BolusReq", 5, 4200, 6000)
        b = ScenarioGenerator(assumptions, RandomSource(5)).randomized("i-BolusReq", 5, 4200, 6000)
        assert a == b
        assert assumptions.permits(a)

    def test_randomized_respects_gap_floor(self, assumptions):
        schedule = ScenarioGenerator(assumptions, RandomSource(1)).randomized(
            "i-BolusReq", 10, min_gap_ticks=100, max_gap_ticks=200
        )
        gaps = [later - earlier for (earlier, _), (later, _) in zip(schedule, schedule[1:])]
        assert all(gap >= 4200 for gap in gaps)

    def test_unknown_event_rejected(self, assumptions):
        generator = ScenarioGenerator(assumptions)
        with pytest.raises(ValueError):
            generator.periodic("i-Nope", count=1, period_ticks=5000)

    def test_interleaved_merges_and_validates(self, assumptions):
        generator = ScenarioGenerator(assumptions)
        bolus = generator.periodic("i-BolusReq", count=2, period_ticks=9000, start_tick=0)
        clear = generator.periodic("i-ClearAlarm", count=2, period_ticks=9000, start_tick=4500)
        merged = generator.interleaved([bolus, clear])
        assert merged == sorted(bolus + clear, key=lambda item: item[0])

    def test_interleaved_rejects_violating_merge(self, assumptions):
        generator = ScenarioGenerator(assumptions)
        bolus = generator.periodic("i-BolusReq", count=2, period_ticks=9000, start_tick=0)
        clear = [(10, "i-ClearAlarm")]
        with pytest.raises(ValueError):
            generator.interleaved([bolus, clear])
