"""Unit tests for statechart validation."""

import pytest

from repro.model.builder import StatechartBuilder
from repro.model.statechart import StatechartError
from repro.model.temporal import at, before
from repro.model.validation import Severity, assert_valid, validate_statechart


def codes(findings):
    return {finding.code for finding in findings}


class TestValidation:
    def test_fig2_chart_has_no_errors(self, fig2_chart):
        findings = validate_statechart(fig2_chart)
        assert all(finding.severity is Severity.WARNING for finding in findings)

    def test_extended_chart_is_clean_enough_to_generate(self, extended_chart):
        assert_valid(extended_chart)

    def test_unreachable_state_warning(self):
        chart = (
            StatechartBuilder("x")
            .input_event("e")
            .state("A", initial=True)
            .state("B")
            .state("Island")
            .transition("t", "A", "B", event="e")
            .build()
        )
        assert "UNREACHABLE" in codes(validate_statechart(chart))

    def test_sink_state_warning(self):
        chart = (
            StatechartBuilder("x")
            .input_event("e")
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", event="e")
            .build()
        )
        assert "SINK" in codes(validate_statechart(chart))

    def test_unused_event_and_output_warnings(self):
        chart = (
            StatechartBuilder("x")
            .input_events("used", "unused")
            .output_variable("never_assigned")
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", event="used")
            .build()
        )
        found = codes(validate_statechart(chart))
        assert "UNUSED_EVENT" in found
        assert "UNUSED_OUTPUT" in found

    def test_nondeterminism_warning(self):
        chart = (
            StatechartBuilder("x")
            .input_event("e")
            .state("A", initial=True)
            .state("B")
            .state("C")
            .transition("t1", "A", "B", event="e")
            .transition("t2", "A", "C", event="e")
            .build()
        )
        assert "NONDET" in codes(validate_statechart(chart))

    def test_before_zero_warning(self):
        chart = (
            StatechartBuilder("x")
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", temporal=before(0))
            .build()
        )
        assert "BEFORE0" in codes(validate_statechart(chart))

    def test_untriggered_self_loop_is_error(self):
        chart = (
            StatechartBuilder("x")
            .state("A", initial=True)
            .transition("t", "A", "A")
            .build()
        )
        findings = validate_statechart(chart)
        assert any(
            finding.code == "SELFLOOP" and finding.severity is Severity.ERROR
            for finding in findings
        )
        with pytest.raises(StatechartError):
            assert_valid(chart)

    def test_assert_valid_returns_warnings(self, fig2_chart):
        warnings = assert_valid(fig2_chart)
        assert all(finding.severity is Severity.WARNING for finding in warnings)

    def test_finding_str_rendering(self):
        chart = (
            StatechartBuilder("x")
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", temporal=at(0))
            .build()
        )
        findings = validate_statechart(chart)
        assert any("AT0" in str(finding) for finding in findings)
