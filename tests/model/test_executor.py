"""Unit tests for the zero-time model executor."""

import pytest

from repro.model.builder import StatechartBuilder
from repro.model.simulation import ModelExecutionError, ModelExecutor
from repro.model.temporal import after, before


class TestFig2Semantics:
    def test_bolus_request_starts_motor_instantaneously(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        executor.advance(10)
        writes = executor.inject("i-BolusReq")
        # The eager before(100) resolution fires t_start_infusion in the same
        # macro-step, so the output appears at the same tick (zero time).
        assert [(w.variable, w.value) for w in writes] == [("o-MotorState", 1)]
        assert executor.current_state == "Infusion"
        assert executor.outputs["o-MotorState"] == 1

    def test_bolus_completes_after_4000_ticks(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        executor.inject("i-BolusReq")
        writes = executor.advance(4000)
        assert ("o-MotorState", 0) in [(w.variable, w.value) for w in writes]
        assert executor.current_state == "Idle"

    def test_bolus_not_complete_before_4000_ticks(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        executor.inject("i-BolusReq")
        executor.advance(3999)
        assert executor.current_state == "Infusion"

    def test_empty_alarm_stops_motor_and_buzzes(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        executor.inject("i-BolusReq")
        executor.advance(500)
        writes = executor.inject("i-EmptyAlarm")
        values = {(w.variable, w.value) for w in writes}
        assert ("o-MotorState", 0) in values
        assert ("o-BuzzerState", 1) in values
        assert executor.current_state == "EmptyAlarm"

    def test_clear_alarm_returns_to_idle(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        executor.inject("i-BolusReq")
        executor.advance(100)
        executor.inject("i-EmptyAlarm")
        executor.inject("i-ClearAlarm")
        assert executor.current_state == "Idle"
        assert executor.outputs["o-BuzzerState"] == 0

    def test_ignored_event_in_wrong_state(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        writes = executor.inject("i-ClearAlarm")
        assert writes == []
        assert executor.current_state == "Idle"

    def test_unknown_event_rejected(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        with pytest.raises(ModelExecutionError):
            executor.inject("i-DoesNotExist")


class TestScenarios:
    def test_run_scenario_resets_and_collects(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        result = executor.run_scenario([(10, "i-BolusReq")], horizon_ticks=5000)
        start = result.first_change("o-MotorState", 1)
        stop = result.first_change("o-MotorState", 0)
        assert start.tick == 10
        assert stop.tick == 4010
        assert result.final_state == "Idle"

    def test_second_request_during_infusion_is_ignored(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        result = executor.run_scenario(
            [(10, "i-BolusReq"), (300, "i-BolusReq")], horizon_ticks=5000
        )
        starts = [
            change for change in result.output_changes
            if change.variable == "o-MotorState" and change.value == 1
        ]
        assert len(starts) == 1

    def test_out_of_order_stimuli_rejected(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        result = executor.run_scenario([(300, "i-BolusReq"), (10, "i-BolusReq")])
        # sorted internally, so both are applied in time order without error
        assert result.firings[0].tick == 10

    def test_negative_advance_rejected(self, fig2_chart):
        with pytest.raises(ModelExecutionError):
            ModelExecutor(fig2_chart).advance(-1)

    def test_firings_record_path(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        result = executor.run_scenario([(0, "i-BolusReq")], horizon_ticks=10)
        assert [firing.transition for firing in result.firings[:2]] == [
            "t_bolus_req",
            "t_start_infusion",
        ]


class TestTemporalOperators:
    def test_after_fires_at_first_opportunity_past_bound(self):
        chart = (
            StatechartBuilder("after_chart")
            .output_variable("out", initial=0)
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", temporal=after(50), assign={"out": 1})
            .build()
        )
        executor = ModelExecutor(chart)
        executor.advance(49)
        assert executor.current_state == "A"
        executor.advance(1)
        assert executor.current_state == "B"

    def test_guard_blocks_transition(self):
        chart = (
            StatechartBuilder("guarded")
            .input_event("e")
            .output_variable("out", initial=0)
            .local_variable("enabled", initial=0)
            .state("A", initial=True)
            .state("B")
            .transition(
                "t", "A", "B", event="e", guard=lambda ctx: ctx["enabled"] == 1, assign={"out": 1}
            )
            .build()
        )
        executor = ModelExecutor(chart)
        executor.inject("e")
        assert executor.current_state == "A"

    def test_local_assignment_enables_later_transition(self):
        chart = (
            StatechartBuilder("local")
            .input_events("arm", "fire")
            .output_variable("out", initial=0)
            .local_variable("armed", initial=0)
            .state("A", initial=True)
            .state("B")
            .transition("t_arm", "A", "A", event="arm", assign={"armed": 1})
            .transition(
                "t_fire", "A", "B", event="fire",
                guard=lambda ctx: ctx["armed"] == 1, assign={"out": 1},
            )
            .build()
        )
        executor = ModelExecutor(chart)
        executor.inject("fire")
        assert executor.current_state == "A"
        executor.inject("arm")
        executor.inject("fire")
        assert executor.current_state == "B"
        assert executor.outputs["out"] == 1

    def test_zero_time_livelock_detected(self):
        chart = (
            StatechartBuilder("livelock")
            .state("A", initial=True)
            .state("B")
            .output_variable("out")
            .transition("t_ab", "A", "B", temporal=before(10))
            .transition("t_ba", "B", "A", temporal=before(10))
            .build()
        )
        executor = ModelExecutor(chart)
        with pytest.raises(ModelExecutionError):
            executor.advance(1)

    def test_reset_restores_initial_configuration(self, fig2_chart):
        executor = ModelExecutor(fig2_chart)
        executor.inject("i-BolusReq")
        executor.advance(100)
        executor.reset()
        assert executor.current_state == "Idle"
        assert executor.current_tick == 0
        assert executor.outputs == fig2_chart.initial_outputs()
        assert executor.firings == []


class TestExtendedChart:
    def test_power_on_test_completes(self, extended_chart):
        executor = ModelExecutor(extended_chart)
        executor.advance(500)
        assert executor.current_state == "Idle"

    def test_occlusion_during_infusion_raises_alarm(self, extended_chart):
        executor = ModelExecutor(extended_chart)
        executor.advance(500)
        executor.inject("i-BolusReq")
        executor.advance(100)
        executor.inject("i-Occlusion")
        assert executor.current_state == "OcclusionAlarm"
        assert executor.outputs["o-MotorState"] == 0
        assert executor.outputs["o-AlarmLedState"] == 1

    def test_door_open_pauses_infusion(self, extended_chart):
        executor = ModelExecutor(extended_chart)
        executor.advance(500)
        executor.inject("i-BolusReq")
        executor.inject("i-DoorOpen")
        assert executor.current_state == "DoorOpenPause"
        executor.inject("i-DoorClose")
        assert executor.current_state == "Idle"
