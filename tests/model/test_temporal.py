"""Unit tests for the temporal trigger operators."""

import pytest

from repro.model.temporal import After, At, Before, after, at, before


class TestAfter:
    def test_may_fire_once_bound_reached(self):
        trigger = after(10)
        assert not trigger.may_fire(9)
        assert trigger.may_fire(10)
        assert trigger.may_fire(11)

    def test_never_forces_firing(self):
        assert not after(10).must_fire(100)

    def test_eager_matches_may(self):
        trigger = after(10)
        assert not trigger.eager_fire(5)
        assert trigger.eager_fire(10)


class TestAt:
    def test_fires_exactly_at_bound(self):
        trigger = at(4000)
        assert not trigger.may_fire(3999)
        assert trigger.may_fire(4000)

    def test_forces_firing_at_bound(self):
        trigger = at(4000)
        assert not trigger.must_fire(3999)
        assert trigger.must_fire(4000)


class TestBefore:
    def test_may_fire_anytime_within_bound(self):
        trigger = before(100)
        assert trigger.may_fire(0)
        assert trigger.may_fire(50)
        assert trigger.may_fire(100)
        assert not trigger.may_fire(101)

    def test_forced_at_bound(self):
        trigger = before(100)
        assert not trigger.must_fire(99)
        assert trigger.must_fire(100)

    def test_eager_fires_immediately(self):
        assert before(100).eager_fire(0)


class TestConstruction:
    def test_negative_bound_rejected(self):
        for factory in (after, at, before):
            with pytest.raises(ValueError):
                factory(-1)

    def test_default_clock_name(self):
        assert after(5).clock == "E_CLK"
        assert at(5, clock="OTHER").clock == "OTHER"

    def test_types(self):
        assert isinstance(after(1), After)
        assert isinstance(at(1), At)
        assert isinstance(before(1), Before)
