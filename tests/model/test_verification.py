"""Unit tests for bounded-response verification (the Design Verifier substitute)."""


from repro.model.builder import StatechartBuilder
from repro.model.temporal import at, before
from repro.model.verification import (
    BoundedResponseChecker,
    BoundedResponseRequirement,
    reachable_states,
)


def chart_with_bound(bound_ticks: int):
    """Trigger event leads to a before(bound) transition that emits the response."""
    return (
        StatechartBuilder("bounded")
        .input_event("trigger")
        .output_variable("out", initial=0)
        .state("Idle", initial=True)
        .state("Waiting")
        .state("Done")
        .transition("t_accept", "Idle", "Waiting", event="trigger")
        .transition("t_respond", "Waiting", "Done", temporal=before(bound_ticks), assign={"out": 1})
        .transition("t_reset", "Done", "Idle", temporal=at(10), assign={"out": 0})
        .build()
    )


def requirement(deadline: int) -> BoundedResponseRequirement:
    return BoundedResponseRequirement(
        requirement_id="R",
        trigger_event="trigger",
        response_variable="out",
        response_value=1,
        deadline_ticks=deadline,
        trigger_state="Idle",
    )


class TestBoundedResponse:
    def test_passes_when_bound_within_deadline(self):
        checker = BoundedResponseChecker(chart_with_bound(50))
        result = checker.check(requirement(100))
        assert result.passed
        assert result.worst_case_ticks == 50
        assert result.margin_ticks == 50

    def test_worst_case_equals_deadline_still_passes(self):
        checker = BoundedResponseChecker(chart_with_bound(100))
        result = checker.check(requirement(100))
        assert result.passed
        assert result.worst_case_ticks == 100

    def test_fails_when_bound_exceeds_deadline(self):
        checker = BoundedResponseChecker(chart_with_bound(150))
        result = checker.check(requirement(100))
        assert not result.passed
        assert result.witness

    def test_fails_when_response_never_produced(self):
        chart = (
            StatechartBuilder("no_response")
            .input_event("trigger")
            .output_variable("out", initial=0)
            .state("Idle", initial=True)
            .state("Stuck")
            .transition("t_accept", "Idle", "Stuck", event="trigger")
            .build()
        )
        result = BoundedResponseChecker(chart).check(requirement(100))
        assert not result.passed
        assert result.worst_case_ticks is None

    def test_immediate_response_on_trigger_transition(self):
        chart = (
            StatechartBuilder("immediate")
            .input_event("trigger")
            .output_variable("out", initial=0)
            .state("Idle", initial=True)
            .state("Done")
            .transition("t", "Idle", "Done", event="trigger", assign={"out": 1})
            .build()
        )
        result = BoundedResponseChecker(chart).check(requirement(10))
        assert result.passed
        assert result.worst_case_ticks == 0

    def test_summary_format(self):
        result = BoundedResponseChecker(chart_with_bound(20)).check(requirement(100))
        assert "PASS" in result.summary()
        assert "R" in result.summary()


class TestGpcaVerification:
    def test_req1_verifies_on_fig2_model(self, fig2_chart, req1):
        checker = BoundedResponseChecker(fig2_chart)
        result = checker.check(req1.to_model_requirement())
        assert result.passed
        assert result.worst_case_ticks == 100  # the before(100) bound is tight

    def test_req1_verifies_on_extended_model(self, extended_chart, req1):
        checker = BoundedResponseChecker(extended_chart)
        result = checker.check(req1.to_model_requirement())
        assert result.passed

    def test_all_gpca_requirements_verify(self, fig2_chart):
        from repro.gpca import gpca_requirements

        checker = BoundedResponseChecker(fig2_chart)
        for timing_requirement in gpca_requirements().with_model_counterpart():
            result = checker.check(timing_requirement.to_model_requirement())
            assert result.passed, timing_requirement.requirement_id

    def test_tightened_deadline_fails(self, fig2_chart, req1):
        from repro.gpca import req1_bolus_start

        checker = BoundedResponseChecker(fig2_chart)
        tight = req1_bolus_start(deadline_ms=50).to_model_requirement()
        result = checker.check(tight)
        assert not result.passed


class TestReachability:
    def test_all_fig2_states_reachable(self, fig2_chart):
        assert set(reachable_states(fig2_chart)) == set(fig2_chart.state_names)

    def test_unreachable_state_excluded(self):
        chart = (
            StatechartBuilder("island")
            .input_event("e")
            .state("A", initial=True)
            .state("B")
            .state("Island")
            .transition("t", "A", "B", event="e")
            .build()
        )
        assert "Island" not in reachable_states(chart)

    def test_requirement_with_no_trigger_state_checks_all_accepting_states(self, extended_chart):
        checker = BoundedResponseChecker(extended_chart)
        result = checker.check(
            BoundedResponseRequirement(
                requirement_id="clear-anywhere",
                trigger_event="i-ClearAlarm",
                response_variable="o-BuzzerState",
                response_value=0,
                deadline_ticks=10,
            )
        )
        assert set(result.trigger_states) == {"EmptyAlarm", "OcclusionAlarm"}
        assert result.passed
