"""Unit tests for statechart structure and the fluent builder."""

import pytest

from repro.model.builder import StatechartBuilder
from repro.model.statechart import State, Statechart, StatechartError
from repro.model.temporal import at


def small_chart() -> Statechart:
    return (
        StatechartBuilder("small")
        .input_events("go", "stop")
        .output_variable("out", initial=0)
        .state("A", initial=True)
        .state("B")
        .transition("t_go", "A", "B", event="go", assign={"out": 1})
        .transition("t_stop", "B", "A", event="stop", assign={"out": 0})
        .build()
    )


class TestConstruction:
    def test_states_and_transitions(self):
        chart = small_chart()
        assert chart.state_names == ["A", "B"]
        assert chart.initial_state == "A"
        assert [t.name for t in chart.transitions] == ["t_go", "t_stop"]

    def test_initial_outputs(self):
        assert small_chart().initial_outputs() == {"out": 0}

    def test_duplicate_state_rejected(self):
        chart = Statechart("x")
        chart.add_state(State("A"), initial=True)
        with pytest.raises(StatechartError):
            chart.add_state(State("A"))

    def test_duplicate_transition_name_rejected(self):
        with pytest.raises(StatechartError):
            (
                StatechartBuilder("x")
                .input_event("e")
                .state("A", initial=True)
                .state("B")
                .transition("t", "A", "B", event="e")
                .transition("t", "B", "A", event="e")
                .build()
            )

    def test_two_initial_states_rejected(self):
        chart = Statechart("x")
        chart.add_state(State("A"), initial=True)
        with pytest.raises(StatechartError):
            chart.add_state(State("B"), initial=True)

    def test_missing_initial_state_rejected(self):
        chart = Statechart("x")
        chart.add_state(State("A"))
        with pytest.raises(StatechartError):
            chart.check_references()

    def test_unknown_event_reference_rejected(self):
        with pytest.raises(StatechartError):
            (
                StatechartBuilder("x")
                .state("A", initial=True)
                .state("B")
                .transition("t", "A", "B", event="missing")
                .build()
            )

    def test_unknown_variable_assignment_rejected(self):
        with pytest.raises(StatechartError):
            (
                StatechartBuilder("x")
                .input_event("e")
                .state("A", initial=True)
                .state("B")
                .transition("t", "A", "B", event="e", assign={"missing": 1})
                .build()
            )

    def test_unknown_target_state_rejected(self):
        with pytest.raises(StatechartError):
            (
                StatechartBuilder("x")
                .input_event("e")
                .state("A", initial=True)
                .transition("t", "A", "Nowhere", event="e")
                .build()
            )


class TestQueries:
    def test_transitions_from_respects_priority(self):
        chart = (
            StatechartBuilder("x")
            .input_events("e1", "e2")
            .state("A", initial=True)
            .state("B")
            .transition("second", "A", "B", event="e1", priority=5)
            .transition("first", "A", "B", event="e2", priority=1)
            .build()
        )
        assert [t.name for t in chart.transitions_from("A")] == ["first", "second"]

    def test_transitions_on_event(self):
        chart = small_chart()
        assert [t.name for t in chart.transitions_on_event("go")] == ["t_go"]

    def test_lookup_helpers(self):
        chart = small_chart()
        assert chart.state("A").name == "A"
        assert chart.transition("t_go").target == "B"
        assert chart.has_input_event("go")
        assert chart.has_output_variable("out")
        with pytest.raises(KeyError):
            chart.state("missing")
        with pytest.raises(KeyError):
            chart.transition("missing")


class TestBuilderFeatures:
    def test_local_variable_and_guard(self):
        chart = (
            StatechartBuilder("guarded")
            .input_event("tick")
            .output_variable("out", initial=0)
            .local_variable("count", initial=0)
            .state("A", initial=True)
            .state("B")
            .transition(
                "t",
                "A",
                "B",
                event="tick",
                guard=lambda ctx: ctx["count"] >= 0,
                assign={"out": 1},
            )
            .build()
        )
        assert chart.initial_locals() == {"count": 0}
        assert chart.transition("t").guard is not None

    def test_temporal_transition(self):
        chart = (
            StatechartBuilder("timed")
            .state("A", initial=True)
            .state("B")
            .output_variable("out")
            .transition("t", "A", "B", temporal=at(100), assign={"out": 1})
            .build()
        )
        assert chart.transition("t").is_temporal

    def test_builder_priorities_default_to_declaration_order(self):
        chart = (
            StatechartBuilder("order")
            .input_events("e")
            .state("A", initial=True)
            .state("B")
            .state("C")
            .transition("first", "A", "B", event="e")
            .transition("second", "A", "C", event="e")
            .build()
        )
        assert [t.name for t in chart.transitions_from("A")] == ["first", "second"]


class TestGpcaCharts:
    def test_fig2_chart_structure(self, fig2_chart):
        assert set(fig2_chart.state_names) == {"Idle", "BolusRequested", "Infusion", "EmptyAlarm"}
        assert fig2_chart.initial_state == "Idle"
        assert len(fig2_chart.transitions) == 5
        assert {event.name for event in fig2_chart.input_events} == {
            "i-BolusReq",
            "i-EmptyAlarm",
            "i-ClearAlarm",
        }

    def test_extended_chart_superset(self, extended_chart):
        assert "OcclusionAlarm" in extended_chart.state_names
        assert "DoorOpenPause" in extended_chart.state_names
        assert extended_chart.initial_state == "PowerOnTest"
        assert len(extended_chart.transitions) >= 12
