"""Incremental campaigns: resume skips stored work without changing results."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, execution_count, table_one_spec
from repro.campaign.worker import execute_run
from repro.faults import FaultMatrixSpec, default_fault_suite, generate_mutants
from repro.gpca.model import build_fig2_statechart
from repro.store import RunStore, run_key


def test_cold_run_with_store_persists_everything(tmp_path, table1_spec):
    store = RunStore(tmp_path / "runs.db")
    runner = CampaignRunner(table1_spec, store=store)
    result = runner.run()
    assert runner.executed_count == len(result) == 3
    assert runner.reused_count == 0
    assert runner.campaign_id is not None
    assert store.counts() == {"runs": 3, "campaigns": 1}
    store.close()


def test_full_resume_executes_zero_runs_and_is_byte_identical(seeded_store, table1_spec, table1_result):
    """The subsystem's acceptance criterion, asserted via the execution counter."""
    executed_before = execution_count()
    runner = CampaignRunner(table1_spec, store=seeded_store, resume=True)
    resumed = runner.run()
    assert execution_count() == executed_before, "resume executed a stored run"
    assert runner.executed_count == 0
    assert runner.reused_count == 3
    assert resumed.to_json() == table1_result.to_json()


def test_partial_resume_executes_only_the_missing_runs(seeded_store, table1_spec, table1_result):
    missing_key = run_key(table1_result.records[1].spec)
    assert seeded_store.delete_run(missing_key)

    executed_before = execution_count()
    runner = CampaignRunner(table1_spec, store=seeded_store, resume=True)
    resumed = runner.run()
    assert execution_count() == executed_before + 1
    assert runner.executed_count == 1
    assert runner.reused_count == 2
    assert resumed.to_json() == table1_result.to_json()
    # The fresh record was written back: a second resume is fully warm.
    assert seeded_store.has(table1_result.records[1].spec)


def test_resume_without_reuse_still_recomputes(tmp_path, table1_spec, table1_result):
    """store= without resume= persists but never reads back."""
    store = RunStore(tmp_path / "runs.db")
    store.save_campaign(table1_result)
    runner = CampaignRunner(table1_spec, store=store)
    result = runner.run()
    assert runner.executed_count == 3
    assert result.to_json() == table1_result.to_json()
    store.close()


def test_resume_requires_store():
    with pytest.raises(ValueError, match="needs a store"):
        CampaignRunner(table_one_spec(samples=2), resume=True)


def test_store_grows_incrementally_across_grids(tmp_path):
    """A wider grid reuses the runs a narrower one already stored."""
    store = RunStore(tmp_path / "runs.db")
    narrow = table_one_spec(samples=2)
    CampaignRunner(narrow, store=store).run()

    # Same coordinates plus nothing new: the identical grid is fully warm even
    # though this runner never executed it.
    runner = CampaignRunner(table_one_spec(samples=2), store=store, resume=True)
    runner.run()
    assert runner.executed_count == 0

    # A different sample count is a different coordinate: everything re-runs.
    wider = table_one_spec(samples=3)
    wide_runner = CampaignRunner(wider, store=store, resume=True)
    wide_runner.run()
    assert wide_runner.executed_count == 3
    assert store.counts()["runs"] == 6
    store.close()


def test_kill_matrix_campaign_resumes_through_store(tmp_path):
    """FaultMatrixSpec (duck-typed spec, fault/mutant coordinates) round-trips."""
    spec = FaultMatrixSpec(
        fault_plans=default_fault_suite()[:1],
        mutants=generate_mutants(build_fig2_statechart())[:1],
        cases=("bolus-request",),
        samples=2,
    )
    store = RunStore(tmp_path / "matrix.db")
    cold_runner = CampaignRunner(spec, store=store)
    cold = cold_runner.run()

    warm_runner = CampaignRunner(spec, store=store, resume=True)
    warm = warm_runner.run()
    assert warm_runner.executed_count == 0
    assert warm.to_json() == cold.to_json()
    assert store.load_campaign(cold_runner.campaign_id).to_json() == cold.to_json()
    store.close()


def test_mutated_record_round_trips_through_sqlite(tmp_path):
    """A stored mutant run rebuilds a spec whose payload matches bit for bit."""
    spec = FaultMatrixSpec(
        fault_plans=default_fault_suite()[:1],
        mutants=generate_mutants(build_fig2_statechart())[:1],
        cases=("bolus-request",),
        samples=2,
    ).expand()[-1]
    assert spec.mutant is not None
    record = execute_run(spec)
    store = RunStore(tmp_path / "runs.db")
    key = store.put_record(record)
    rebuilt = store.get(key, index=spec.index)
    assert rebuilt.to_dict() == record.to_dict()
    store.close()
