"""SnapshotDiff: verdict flips, new violations, drift, added/removed runs."""

from __future__ import annotations

import copy

import pytest

from repro.campaign import CampaignResult
from repro.store import DRIFT_THRESHOLD_US, RunStore, SnapshotDiff, StoreError, diff_snapshots


def _mutated(result: CampaignResult, edit) -> CampaignResult:
    """A deep-copied campaign with ``edit(payload)`` applied to its dict."""
    payload = copy.deepcopy(result.to_dict())
    edit(payload)
    return CampaignResult.from_dict(payload)


def test_identical_snapshots_diff_clean(table1_result):
    diff = SnapshotDiff.between(table1_result, table1_result)
    assert diff.clean
    assert diff.regressions() == []
    assert diff.to_dict()["compared"] == 3
    assert "no changes" in diff.render()


def test_verdict_flip_is_a_regression(table1_result):
    def edit(payload):
        run = payload["runs"][1]  # scheme 2, the passing run
        assert run["r"]["passed"] is True
        run["r"]["passed"] = False
        run["r"]["violations"] = run["r"]["violations"] + 2

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    assert not diff.clean
    regressions = diff.regressions()
    assert [delta.label for delta in regressions] == ["scheme2/bolus-request"]
    assert regressions[0].verdict_flipped
    assert "REGRESSED" in diff.render()
    assert "verdict PASS->FAIL" in diff.render()


def test_fix_is_an_improvement_not_a_regression(table1_result):
    def edit(payload):
        run = payload["runs"][0]  # scheme 1, the failing run
        assert run["r"]["passed"] is False
        run["r"]["passed"] = True
        run["r"]["violations"] = 0

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    assert diff.regressions() == []
    assert [delta.label for delta in diff.improvements()] == ["scheme1/bolus-request"]


def test_new_violations_without_flip_still_regress(table1_result):
    def edit(payload):
        run = payload["runs"][2]  # scheme 3, already failing
        run["r"]["violations"] = run["r"]["violations"] + 1

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    regressed = diff.regressions()
    assert [delta.label for delta in regressed] == ["scheme3/bolus-request"]
    assert not regressed[0].verdict_flipped


def test_latency_and_segment_drift_are_detected(table1_result):
    shift_us = int(DRIFT_THRESHOLD_US * 5000)

    def edit(payload):
        run = payload["runs"][1]
        for sample in run["r"]["samples"]:
            if sample["latency_us"] is not None:
                sample["latency_us"] += shift_us
        for segment in run["m"]["segments"]:
            if segment["code_delay_us"] is not None:
                segment["code_delay_us"] += shift_us

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    (delta,) = [d for d in diff.changed() if d.label == "scheme2/bolus-request"]
    assert delta.latency_drift_us == pytest.approx(shift_us)
    assert delta.drifted
    assert "latency" in diff.render()


def test_seed_changes_still_pair_runs(table1_result):
    """Pairing is semantic: a different seed compares, not added/removed."""

    def edit(payload):
        for run in payload["runs"]:
            run["spec"]["sut_seed"] += 1

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    assert len(diff.deltas) == 3
    assert diff.added == [] and diff.removed == []


def test_grid_changes_show_as_added_and_removed(table1_result):
    def edit(payload):
        run = payload["runs"][2]
        run["spec"]["scheme"] = 1
        run["spec"]["period_us"] = 20000

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    assert diff.added == ["scheme1:period=20ms/bolus-request"]
    assert diff.removed == ["scheme3/bolus-request"]
    assert "only in new" in diff.render()


def test_diff_snapshots_resolves_latest_and_prev(tmp_path, table1_result):
    store = RunStore(tmp_path / "runs.db")
    store.save_campaign(table1_result)

    changed = copy.deepcopy(table1_result.to_dict())
    changed["runs"][1]["r"]["passed"] = False
    store.save_campaign(CampaignResult.from_dict(changed))

    diff = diff_snapshots(store, "prev", "latest")
    assert [delta.label for delta in diff.regressions()] == ["scheme2/bolus-request"]

    with pytest.raises(StoreError, match="no campaign snapshot"):
        diff_snapshots(store, "prev", "no-such-id")
    store.close()


def test_segment_delay_payloads_drive_drift(table1_result):
    """The m-payload really is the drift source (no m-report → no segment drift)."""

    def edit(payload):
        payload["runs"][1]["m"] = None

    diff = SnapshotDiff.between(table1_result, _mutated(table1_result, edit))
    (delta,) = [d for d in diff.deltas if d.label == "scheme2/bolus-request"]
    assert delta.segment_drift_us == {}
