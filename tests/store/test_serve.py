"""The ``repro serve`` JSON API: routes, ETag caching, concurrency."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.store import StoreServer


@pytest.fixture
def server(seeded_store):
    with StoreServer(seeded_store) as running:
        yield running


def _get(server: StoreServer, path: str, headers=None):
    request = urllib.request.Request(server.url + path, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, response.headers, json.loads(response.read())


def test_index_lists_endpoints(server):
    status, _, payload = _get(server, "/")
    assert status == 200
    assert "/table1" in payload["endpoints"]


def test_healthz_reports_counts(server):
    status, _, payload = _get(server, "/healthz")
    assert status == 200
    assert payload == {"status": "ok", "counts": {"runs": 3, "campaigns": 1}}


def test_runs_endpoint_lists_and_filters(server):
    _, _, payload = _get(server, "/runs")
    assert payload["count"] == 3
    _, _, filtered = _get(server, "/runs?scheme=2&limit=5")
    assert filtered["count"] == 1
    assert filtered["runs"][0]["scheme"] == 2


def test_campaign_endpoints_round_trip(server, seeded_store, table1_result):
    _, _, listing = _get(server, "/campaigns")
    (row,) = listing["campaigns"]
    assert row["name"] == "table1"

    _, _, payload = _get(server, f"/campaigns/{row['campaign_id']}")
    canonical = json.dumps(payload["result"], sort_keys=True)
    assert canonical == table1_result.to_json()


def test_table1_endpoint_answers_correctly(server):
    status, _, payload = _get(server, "/table1")
    assert status == 200
    assert payload["case"] == "bolus-request"
    assert len(payload["schemes"]) == 3
    verdicts = {row["scheme"]: row["passed"] for row in payload["schemes"]}
    assert verdicts == {1: False, 2: True, 3: False}
    assert "TABLE I." in payload["render"]


def test_diff_endpoint_compares_snapshots(server):
    status, _, payload = _get(server, "/diff?old=latest&new=latest")
    assert status == 200
    assert payload["clean"] is True
    assert payload["compared"] == 3


def test_etag_roundtrip_yields_304(server):
    status, headers, _ = _get(server, "/table1")
    etag = headers["ETag"]
    assert status == 200 and etag

    request = urllib.request.Request(
        server.url + "/table1", headers={"If-None-Match": etag}
    )
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request)
    assert info.value.code == 304


def test_unknown_endpoint_is_404_json(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(server.url + "/nope")
    assert info.value.code == 404
    assert "unknown endpoint" in json.loads(info.value.read())["error"]


def test_bad_query_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(server.url + "/runs?scheme=abc")
    assert info.value.code == 400


def test_diff_without_parameters_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(server.url + "/diff")
    assert info.value.code == 400


def test_table1_under_50_concurrent_requests(server):
    """The acceptance criterion: ≥ 50 concurrent clients, one correct answer."""

    def fetch(_index: int):
        with urllib.request.urlopen(server.url + "/table1") as response:
            return response.status, response.headers["ETag"], response.read()

    with ThreadPoolExecutor(max_workers=50) as pool:
        outcomes = list(pool.map(fetch, range(50)))

    statuses = {status for status, _, _ in outcomes}
    etags = {etag for _, etag, _ in outcomes}
    bodies = {body for _, _, body in outcomes}
    assert statuses == {200}
    assert len(etags) == 1, "ETags diverged across concurrent responses"
    assert len(bodies) == 1, "bodies diverged across concurrent responses"
    payload = json.loads(bodies.pop())
    assert {row["scheme"]: row["passed"] for row in payload["schemes"]} == {
        1: False,
        2: True,
        3: False,
    }
