"""CLI coverage of ``repro --version``, ``repro campaign --store/--resume``,
``repro store ...`` and the serve plumbing."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.campaign import CampaignResult
from repro.cli import main, package_version
from repro.store import RunStore


def test_version_flag_prints_package_version(capsys):
    with pytest.raises(SystemExit) as info:
        main(["--version"])
    assert info.value.code == 0
    assert package_version() in capsys.readouterr().out


def test_package_version_matches_module_fallback():
    # Installed metadata may legitimately lag the source tree inside the dev
    # environment; both surfaces must at least be well-formed versions.
    assert package_version().count(".") >= 1
    assert __version__.count(".") >= 1


def test_campaign_store_and_resume_round_trip(tmp_path, capsys):
    db = str(tmp_path / "runs.db")
    assert main(["campaign", "--grid", "table1", "--samples", "2", "--store", db]) == 0
    cold = capsys.readouterr().out
    assert "3 run(s) executed" in cold
    assert "snapshot" in cold

    assert main(
        ["campaign", "--grid", "table1", "--samples", "2", "--store", db, "--resume"]
    ) == 0
    warm = capsys.readouterr().out
    assert "0 run(s) executed, 3 reused from store" in warm

    with RunStore(db) as store:
        assert store.counts() == {"runs": 3, "campaigns": 1}


def test_campaign_resume_requires_store(capsys):
    assert main(["campaign", "--grid", "table1", "--resume"]) == 2
    assert "--resume needs --store" in capsys.readouterr().err


def test_campaign_baseline_and_store_are_mutually_exclusive(tmp_path, capsys):
    assert (
        main(
            [
                "campaign",
                "--grid",
                "table1",
                "--baseline",
                str(tmp_path / "b.json"),
                "--store",
                str(tmp_path / "runs.db"),
            ]
        )
        == 2
    )
    assert "mutually exclusive" in capsys.readouterr().err


def test_campaign_rejects_unusable_store_file(tmp_path, capsys):
    bogus = tmp_path / "bogus.db"
    bogus.write_text("not sqlite", encoding="utf-8")
    assert main(["campaign", "--grid", "table1", "--samples", "2", "--store", str(bogus)]) == 1
    assert "not a usable run store" in capsys.readouterr().err


def test_store_list_and_runs(tmp_path, capsys):
    db = str(tmp_path / "runs.db")
    assert main(["campaign", "--grid", "table1", "--samples", "2", "--store", db]) == 0
    capsys.readouterr()

    assert main(["store", "list", "--db", db]) == 0
    listing = capsys.readouterr().out
    assert "3 stored run(s), 1 campaign snapshot(s)" in listing
    assert "table1" in listing

    assert main(["store", "runs", "--db", db, "--scheme", "2"]) == 0
    runs = capsys.readouterr().out
    assert "1 matching run(s) of 3" in runs
    assert "scheme2/bolus-request" in runs


def test_store_diff_cli_flags_regressions(tmp_path, capsys):
    db = str(tmp_path / "runs.db")
    assert main(["campaign", "--grid", "table1", "--samples", "2", "--store", db]) == 0
    capsys.readouterr()

    assert main(["store", "diff", "--db", db, "latest", "latest"]) == 0
    assert "no changes" in capsys.readouterr().out

    # Plant a regressed snapshot, then gate on it.
    with RunStore(db) as store:
        payload = json.loads(store.load_campaign(store.latest_campaign_id()).to_json())
        payload["runs"][1]["r"]["passed"] = False
        store.save_campaign(CampaignResult.from_dict(payload))

    assert main(["store", "diff", "--db", db, "prev", "latest"]) == 0
    assert "REGRESSED" in capsys.readouterr().out
    assert (
        main(["store", "diff", "--db", db, "prev", "latest", "--fail-on-regression"]) == 1
    )


def test_store_diff_unknown_snapshot_is_exit_1(tmp_path, capsys):
    db = str(tmp_path / "runs.db")
    RunStore(db).close()
    assert main(["store", "diff", "--db", db, "latest", "latest"]) == 1
    assert "cannot resolve" in capsys.readouterr().err


def test_store_export_writes_artifacts(tmp_path, capsys):
    db = str(tmp_path / "runs.db")
    assert main(["campaign", "--grid", "table1", "--samples", "2", "--store", db]) == 0
    capsys.readouterr()

    json_path = tmp_path / "campaign.json"
    csv_path = tmp_path / "summary.csv"
    table_md = tmp_path / "table1.md"
    table_csv = tmp_path / "table1.csv"
    assert (
        main(
            [
                "store",
                "export",
                "--db",
                db,
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
                "--table1",
                str(table_md),
                "--table1-csv",
                str(table_csv),
            ]
        )
        == 0
    )
    assert len(json.loads(json_path.read_text())["runs"]) == 3
    assert csv_path.read_text().startswith("index,label,scheme,")
    assert table_md.read_text().startswith("### ")
    assert table_csv.read_text().splitlines()[0].startswith("sample,")


def test_faults_store_resume(tmp_path, capsys, monkeypatch):
    """The kill-matrix CLI shares the same persistence plumbing.

    The stock matrix is 112 runs; a two-plan, one-mutant, one-scenario matrix
    exercises the identical CLI path at test speed.
    """
    from repro.faults import FaultMatrixSpec, default_fault_suite, generate_mutants
    from repro.gpca.model import build_fig2_statechart

    small = FaultMatrixSpec(
        fault_plans=default_fault_suite()[:2],
        mutants=generate_mutants(build_fig2_statechart())[:1],
        cases=("bolus-request",),
        samples=1,
    )
    monkeypatch.setattr("repro.cli.default_matrix_spec", lambda **kwargs: small)

    db = str(tmp_path / "matrix.db")
    base = ["faults", "--samples", "1", "--seed", "0"]
    assert main([*base, "--store", db]) == 0
    cold = capsys.readouterr().out
    assert f"{small.size} run(s) executed" in cold
    assert main([*base, "--store", db, "--resume"]) == 0
    warm = capsys.readouterr().out
    assert f"0 run(s) executed, {small.size} reused from store" in warm


def test_faults_resume_requires_store(capsys):
    assert main(["faults", "--resume"]) == 2
    assert "--resume needs --store" in capsys.readouterr().err
