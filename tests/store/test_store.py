"""RunStore persistence: records, snapshots, reopening, thread safety."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.campaign import CampaignResult
from repro.store import RunStore, StoreError, run_key


def test_put_and_lookup_round_trip(tmp_path, table1_result):
    store = RunStore(tmp_path / "runs.db")
    record = table1_result.records[0]
    record_id = store.put_record(record)
    assert record_id == RunStore.record_id(record)
    assert record_id != run_key(record.spec), "record ids also hash the payload"
    assert store.has(record.spec)
    assert store.get(record_id) is not None
    assert store.get(run_key(record.spec)) is not None

    found = store.lookup(record.spec)
    assert found is not None
    assert found.spec == record.spec
    assert found.r_payload == record.r_payload
    assert found.m_payload == record.m_payload
    store.close()


def test_lookup_misses_cleanly(tmp_path, table1_result):
    store = RunStore(tmp_path / "runs.db")
    assert store.lookup(table1_result.records[0].spec) is None
    assert not store.has(table1_result.records[0].spec)
    store.close()


def test_get_reattaches_caller_index(seeded_store, table1_result):
    record = table1_result.records[2]
    found = seeded_store.get(run_key(record.spec), index=record.spec.index)
    assert found is not None
    assert found.spec.index == 2
    assert found.to_dict() == record.to_dict()


def test_snapshot_reassembles_byte_identically(seeded_store, table1_result):
    campaign_id = seeded_store.latest_campaign_id()
    loaded = seeded_store.load_campaign(campaign_id)
    assert isinstance(loaded, CampaignResult)
    assert loaded.to_json() == table1_result.to_json()


def test_snapshot_id_is_content_addressed(seeded_store, table1_result):
    first = seeded_store.latest_campaign_id()
    second = seeded_store.save_campaign(table1_result)
    assert second == first
    assert seeded_store.counts() == {"runs": 3, "campaigns": 1}


def test_changed_results_do_not_corrupt_older_snapshots(seeded_store, table1_result):
    """Same grid, different outcome: both snapshots stay byte-exact.

    This is the post-code-change scenario — the coordinate is unchanged but
    the payload is not, so the store must append a new record rather than
    rewrite the one the first snapshot references.
    """
    import copy

    original_id = seeded_store.latest_campaign_id()
    payload = copy.deepcopy(table1_result.to_dict())
    payload["runs"][1]["r"]["passed"] = False
    changed = CampaignResult.from_dict(payload)

    changed_id = seeded_store.save_campaign(changed)
    assert changed_id != original_id
    assert seeded_store.counts() == {"runs": 4, "campaigns": 2}
    assert seeded_store.load_campaign(original_id).to_json() == table1_result.to_json()
    assert seeded_store.load_campaign(changed_id).to_json() == changed.to_json()
    # Resume semantics: the *newest* record at the coordinate wins.
    latest = seeded_store.lookup(table1_result.records[1].spec)
    assert latest.r_payload["passed"] is False


def test_store_survives_reopen(tmp_path, table1_result):
    path = tmp_path / "runs.db"
    with RunStore(path) as store:
        campaign_id = store.save_campaign(table1_result)
    with RunStore(path) as reopened:
        assert reopened.counts() == {"runs": 3, "campaigns": 1}
        assert reopened.load_campaign(campaign_id).to_json() == table1_result.to_json()


def test_unknown_snapshot_raises(seeded_store):
    with pytest.raises(StoreError, match="no campaign snapshot"):
        seeded_store.load_campaign("does-not-exist")


def test_missing_run_row_is_reported(seeded_store, table1_result):
    campaign_id = seeded_store.latest_campaign_id()
    assert seeded_store.delete_run(run_key(table1_result.records[1].spec))
    with pytest.raises(StoreError, match="missing run"):
        seeded_store.load_campaign(campaign_id)


def test_schema_version_mismatch_is_rejected(tmp_path):
    path = tmp_path / "runs.db"
    RunStore(path).close()
    connection = sqlite3.connect(str(path))
    with connection:
        connection.execute("UPDATE store_meta SET value = '999' WHERE key = 'schema_version'")
    connection.close()
    with pytest.raises(StoreError, match="schema version"):
        RunStore(path)


def test_non_database_file_is_rejected_cleanly(tmp_path):
    path = tmp_path / "not-a-db.txt"
    path.write_text("definitely not sqlite", encoding="utf-8")
    with pytest.raises(StoreError, match="not a usable run store"):
        RunStore(path)


def test_run_rows_filter_and_limit(seeded_store):
    rows = seeded_store.run_rows()
    assert len(rows) == 3
    assert {row["scheme"] for row in rows} == {1, 2, 3}
    assert seeded_store.run_rows(scheme=2)[0]["scheme"] == 2
    assert len(seeded_store.run_rows(limit=1)) == 1
    assert seeded_store.run_rows(case="no-such-case") == []


def test_state_token_tracks_content(seeded_store, table1_result):
    token = seeded_store.state_token()
    assert seeded_store.state_token() == token
    seeded_store.delete_run(run_key(table1_result.records[0].spec))
    assert seeded_store.state_token() != token


def test_state_token_survives_delete_then_insert(seeded_store, table1_result):
    """Deleting the newest row and inserting another must not restore the
    token (COUNT/MAX-rowid schemes collide here; the generation counter
    cannot)."""
    token = seeded_store.state_token()
    newest = table1_result.records[-1]
    assert seeded_store.delete_run(run_key(newest.spec))
    seeded_store.put_record(table1_result.records[0])  # already stored: still a write
    assert seeded_store.state_token() != token


def test_concurrent_readers_share_one_store(seeded_store):
    campaign_id = seeded_store.latest_campaign_id()
    errors = []

    def read() -> None:
        try:
            for _ in range(5):
                assert len(seeded_store.run_rows()) == 3
                assert len(seeded_store.load_campaign(campaign_id)) == 3
        except Exception as error:  # pragma: no cover - only on failure
            errors.append(error)

    threads = [threading.Thread(target=read) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
