"""Content-addressed run coordinates: stability and sensitivity."""

from __future__ import annotations

from dataclasses import replace

from repro.campaign import model_fingerprint, table_one_spec
from repro.faults import default_fault_suite, generate_mutants
from repro.gpca.model import build_fig2_statechart
from repro.store import run_coordinate, run_key


def _spec():
    return table_one_spec(samples=2).expand()[0]


def test_run_key_is_stable_and_hex():
    spec = _spec()
    key = run_key(spec)
    assert key == run_key(spec)
    assert len(key) == 64
    int(key, 16)


def test_run_key_ignores_grid_index():
    spec = _spec()
    moved = replace(spec, index=41)
    assert run_key(moved) == run_key(spec)


def test_run_key_embeds_model_fingerprint():
    coordinate = run_coordinate(_spec())
    assert coordinate["model_fingerprint"] == model_fingerprint("fig2")
    assert "index" not in coordinate
    assert "label" not in coordinate


def test_run_key_distinguishes_every_content_axis():
    spec = _spec()
    variants = [
        replace(spec, scheme=2),
        replace(spec, samples=spec.samples + 1),
        replace(spec, case_seed=spec.case_seed + 1),
        replace(spec, sut_seed=spec.sut_seed + 1),
        replace(spec, model="extended"),
        replace(spec, m_test="none"),
        replace(spec, faults=default_fault_suite()[0]),
        replace(spec, mutant=generate_mutants(build_fig2_statechart())[0]),
    ]
    keys = {run_key(variant) for variant in variants}
    assert run_key(spec) not in keys
    assert len(keys) == len(variants)


def test_fig2_and_extended_fingerprints_differ():
    assert model_fingerprint("fig2") != model_fingerprint("extended")
