"""Shared fixtures for the store-layer tests.

Executing campaigns is the expensive part of these tests, so the small
table1 campaign (2 samples) is computed once per session and shared; every
test that needs a *store* gets a fresh one seeded from those records.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, table_one_spec
from repro.store import RunStore


@pytest.fixture(scope="session")
def table1_spec():
    return table_one_spec(samples=2)


@pytest.fixture(scope="session")
def table1_result(table1_spec):
    """One executed table1 campaign (3 runs), shared across the session."""
    return CampaignRunner(table1_spec).run()


@pytest.fixture
def seeded_store(tmp_path, table1_result):
    """A fresh store file pre-loaded with the table1 campaign snapshot."""
    store = RunStore(tmp_path / "runs.db")
    store.save_campaign(table1_result)
    yield store
    store.close()
