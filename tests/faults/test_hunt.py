"""Survivor hunter: differential episodes, determinism, plateau behaviour."""

from __future__ import annotations

from repro.faults import MutantSpec, SurvivorHunter, generate_mutants
from repro.faults.hunt import mc_signature
from repro.gpca import gpca_scenario_space
from repro.gpca.model import build_fig2_statechart


def mutant_by_id(mutant_id: str) -> MutantSpec:
    for mutant in generate_mutants(build_fig2_statechart()):
        if mutant.mutant_id == mutant_id:
            return mutant
    raise AssertionError(f"no generated mutant {mutant_id!r}")


def test_hunter_kills_the_timing_survivor():
    """`timing:t_bolus_done:2000` survives the fixed scenarios (a shorter
    bolus violates nothing they measure) but differs observably at the m/c
    boundary — the hunter must find a distinguishing program."""
    survivor = mutant_by_id("timing:t_bolus_done:2000")
    hunter = SurvivorHunter(gpca_scenario_space(), [survivor], scheme=2, seed=0)
    report = hunter.hunt(6)
    assert survivor.mutant_id in report.kills
    assert report.remaining == []
    killing = next(episode for episode in report.episodes if episode.killed)
    assert killing.program.name == report.kills[survivor.mutant_id]


def test_hunt_is_seed_deterministic():
    survivor = mutant_by_id("timing:t_bolus_done:2000")
    first = SurvivorHunter(gpca_scenario_space(), [survivor], scheme=2, seed=3).hunt(4)
    second = SurvivorHunter(gpca_scenario_space(), [survivor], scheme=2, seed=3).hunt(4)
    assert first.summary() == second.summary()
    assert first.to_dict() == second.to_dict()


def test_hunt_stops_early_once_every_survivor_is_killed():
    survivor = mutant_by_id("timing:t_bolus_done:2000")
    report = SurvivorHunter(gpca_scenario_space(), [survivor], scheme=2, seed=0).hunt(20)
    assert len(report.episodes) < 20


def test_mc_signature_is_blind_to_internal_events():
    """The kill oracle observes monitored/controlled variables only."""
    from repro.core.r_testing import execute_r_test
    from repro.gpca import bolus_request_test_case
    from repro.gpca.pump import build_scheme_system

    report = execute_r_test(
        lambda: build_scheme_system(2, seed=11), bolus_request_test_case(samples=1, seed=1)
    )
    verdicts, c_events = mc_signature(report)
    assert len(verdicts) == 1
    assert c_events  # the motor started: at least one c-event
    assert all(variable.startswith("c-") for variable, _, _ in c_events)
