"""CLI coverage of the ``repro faults`` sub-command."""

from __future__ import annotations

from repro.cli import main


def test_faults_list_prints_suite_and_mutants(capsys):
    assert main(["faults", "--list"]) == 0
    output = capsys.readouterr().out
    assert "fault suite of system 'gpca' (7 plans):" in output
    assert "clock-drift" in output
    assert "mutants of model 'fig2' (12):" in output
    assert "drop:t_start_infusion:0:o-MotorState" in output


def test_faults_list_extended_model(capsys):
    assert main(["faults", "--list", "--model", "extended"]) == 0
    assert "mutants of model 'extended'" in capsys.readouterr().out


def test_faults_rejects_invalid_samples(capsys):
    assert main(["faults", "--samples", "0"]) == 2
    assert "sample count must be positive" in capsys.readouterr().err


def test_faults_rejects_negative_workers(capsys):
    assert main(["faults", "--workers", "-2"]) == 2
    assert "worker count cannot be negative" in capsys.readouterr().err
