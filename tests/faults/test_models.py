"""Unit tests for the platform fault models and fault plans."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import (
    ClockDriftFault,
    ExecutionInflationFault,
    FaultPlan,
    PriorityInversionFault,
    QueueFault,
    SensorGlitchFault,
    SensorStuckFault,
    default_fault_suite,
    fault_from_dict,
)
from repro.gpca.pump import build_scheme_system
from repro.platform.kernel.random import JitterModel, RandomSource
from repro.platform.kernel.simulator import Simulator
from repro.platform.kernel.time import ms
from repro.platform.rtos.directives import Compute
from repro.platform.rtos.scheduler import RTOSScheduler


class _StubSystem:
    """The minimal system surface the fault models instrument."""

    class _Bundle:
        def __init__(self, simulator, hardware=None):
            self.simulator = simulator
            self.hardware = hardware

    def __init__(self, simulator=None, hardware=None):
        simulator = simulator or Simulator()
        self.bundle = self._Bundle(simulator, hardware)
        self.scheduler = RTOSScheduler(simulator)


def _rng(name="test"):
    return RandomSource(0).stream(name)


class TestClockDrift:
    def test_relative_delays_scale_and_absolute_times_do_not(self):
        system = _StubSystem()
        simulator = system.bundle.simulator
        ClockDriftFault(drift=1.0).instrument(system, _rng())
        fired = []
        simulator.schedule(ms(10), lambda: fired.append(("relative", simulator.now)))
        simulator.schedule_at(ms(10), lambda: fired.append(("absolute", simulator.now)))
        simulator.run_until(ms(30))
        assert ("absolute", ms(10)) in fired
        assert ("relative", ms(20)) in fired  # 10 ms doubled by the drift

    def test_rejects_total_clock_stop(self):
        with pytest.raises(ValueError):
            ClockDriftFault(drift=-1.0)


class TestExecutionInflation:
    def _run_one_job(self, fault):
        system = _StubSystem()
        simulator, scheduler = system.bundle.simulator, system.scheduler
        if fault is not None:
            fault.instrument(system, _rng())
        done = []

        def job():
            yield Compute(ms(2))
            done.append(simulator.now)

        task = scheduler.create_task("codem", priority=1, job_factory=job)
        scheduler.start()
        scheduler.activate(task)
        simulator.run_until(ms(50))
        return done[0]

    def test_factor_inflates_compute_segments(self):
        assert self._run_one_job(None) == ms(2)
        assert self._run_one_job(ExecutionInflationFault(factor=3.0)) == ms(6)

    def test_task_filter_restricts_scope(self):
        # The stub's only task is named "codem"; a filter for another name
        # must leave its compute segments untouched.
        assert self._run_one_job(ExecutionInflationFault(factor=3.0, task="sensing")) == ms(2)

    def test_overrun_is_seed_deterministic(self):
        fault = ExecutionInflationFault(
            factor=1.0, overrun=JitterModel(ms(5), ms(1), ms(1)), overrun_probability=1.0
        )
        first = self._run_one_job(fault)
        second = self._run_one_job(fault)
        assert first == second
        assert first >= ms(2) + ms(4)  # nominal segment plus at least the overrun floor

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ExecutionInflationFault(overrun_probability=1.5)


class TestQueueFault:
    def _system_with_queue(self, fault):
        system = _StubSystem()
        fault.instrument(system, _rng())
        queue = system.scheduler.create_queue("i_events", capacity=8)
        return system, queue

    def test_drop_loses_messages_silently(self):
        _, queue = self._system_with_queue(QueueFault(queue="i_events", drop_probability=1.0))
        assert queue.send("occurrence") is True  # sender sees success
        assert len(queue) == 0

    def test_delay_redelivers_later_and_wakes_receivers(self):
        system, queue = self._system_with_queue(
            QueueFault(queue="i_events", delay_us=ms(5), delay_probability=1.0)
        )
        simulator = system.bundle.simulator
        assert queue.send("late") is True
        assert len(queue) == 0
        simulator.run_until(ms(10))
        assert queue.receive_nowait() == "late"

    def test_reorder_jumps_the_fifo(self):
        _, queue = self._system_with_queue(QueueFault(queue="i_events", reorder_probability=1.0))
        queue.send("first")
        queue.send("second")
        assert queue.receive_nowait() == "second"

    def test_rejects_delay_probability_without_a_delay(self):
        """A delay probability with delay_us=0 would be a silent no-op fault."""
        with pytest.raises(ValueError, match="delay_us"):
            QueueFault(queue="o_events", delay_probability=0.8)

    def test_rejects_probabilities_summing_above_one(self):
        """Drop/delay/reorder are disjoint slices of one roll; a sum above one
        would silently cap the later outcomes below their configured rates."""
        with pytest.raises(ValueError, match="sum"):
            QueueFault(queue="i_events", drop_probability=0.5, reorder_probability=0.9)

    def test_name_filter_leaves_other_queues_alone(self):
        system = _StubSystem()
        QueueFault(queue="o_events", drop_probability=1.0).instrument(system, _rng())
        queue = system.scheduler.create_queue("i_events")
        queue.send("kept")
        assert queue.receive_nowait() == "kept"


class TestPriorityInversion:
    def test_registers_a_top_priority_hog(self):
        system = _StubSystem()
        PriorityInversionFault(period_us=ms(50)).instrument(system, _rng())
        hog = system.scheduler.get_task("fault_inversion_hog")
        assert hog.is_periodic
        assert hog.priority > 10

    def test_hog_steals_cpu_windows(self):
        system = _StubSystem()
        simulator, scheduler = system.bundle.simulator, system.scheduler
        PriorityInversionFault(
            period_us=ms(20), window=JitterModel(ms(10)), offset_us=ms(1)
        ).instrument(system, _rng())
        done = []

        def job():
            yield Compute(ms(5))
            done.append(simulator.now)

        task = scheduler.create_task("victim", priority=1, job_factory=job)
        scheduler.start()
        scheduler.activate(task)
        simulator.run_until(ms(50))
        assert done and done[0] > ms(5)  # the clean platform would finish at 5 ms


class TestSensorFaults:
    def test_stuck_level_sensor_freezes_reads(self):
        system = build_scheme_system(1, seed=3)
        SensorStuckFault(device="reservoir_sensor", stuck_value=False).instrument(
            system, _rng()
        )
        sensor = system.bundle.hardware.reservoir_sensor
        sensor.set_physical(True)
        system.bundle.simulator.run_until(ms(50))
        assert sensor.read() is False  # latched samples never reach software

    def test_stuck_button_swallows_polled_events(self):
        system = build_scheme_system(1, seed=3)
        SensorStuckFault(device="bolus_button").instrument(system, _rng())
        button = system.bundle.hardware.bolus_button
        button.trigger(True)
        button.start()
        system.bundle.simulator.run_until(ms(50))
        assert button.poll() == []

    def test_glitch_drops_a_seeded_fraction_of_events(self):
        system = build_scheme_system(1, seed=3)
        SensorGlitchFault(device="clear_alarm_button", drop_probability=0.5).instrument(
            system, _rng()
        )
        button = system.bundle.hardware.clear_alarm_button
        button.start()
        survived = 0
        for press in range(40):
            button.trigger(True)
            system.bundle.simulator.run_until(ms(20 * (press + 1)))
            survived += len(button.poll())
        assert 0 < survived < 40  # some dropped, some through


class TestFaultPlan:
    def test_empty_plan_instrument_is_identity(self):
        system = build_scheme_system(1, seed=1)
        before = (
            system.bundle.simulator.schedule,
            system.scheduler._advance,
            system.scheduler.create_queue,
        )
        assert FaultPlan().instrument(system, seed=7) is system
        after = (
            system.bundle.simulator.schedule,
            system.scheduler._advance,
            system.scheduler.create_queue,
        )
        assert before == after  # no wrapper hooks were installed

    def test_round_trips_through_dict_and_pickle(self):
        for plan in default_fault_suite():
            assert FaultPlan.from_dict(plan.to_dict()) == plan
            assert pickle.loads(pickle.dumps(plan)) == plan

    def test_dict_valued_any_fields_round_trip_unconverted(self):
        """Only fields *declared* as JitterModel deserialize as jitter models;
        an Any-typed field holding a dict must come back as that dict."""
        fault = SensorStuckFault(device="reservoir_sensor", stuck_value={"level": 1})
        assert fault_from_dict(fault.to_dict()) == fault
        empty_dict_value = SensorStuckFault(stuck_value={})
        assert fault_from_dict(empty_dict_value.to_dict()) == empty_dict_value

    def test_fault_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict({"kind": "cosmic-ray"})

    def test_describe_names_every_fault(self):
        for plan in default_fault_suite():
            description = plan.describe()
            assert plan.name in description
