"""Kill-matrix engine: grid expansion, scoring and campaign integration."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner
from repro.faults import (
    FaultMatrixSpec,
    FaultPlan,
    KillMatrix,
    MutantSpec,
    SensorStuckFault,
    run_kill_matrix,
)

STUCK_BUTTON = FaultPlan((SensorStuckFault(device="bolus_button"),), name="stuck-button")
MOTOR_DROP = MutantSpec(
    operator="action-drop",
    transition="t_start_infusion",
    mutant_id="drop:t_start_infusion:0:o-MotorState",
    action_index=0,
)


def tiny_spec(**overrides) -> FaultMatrixSpec:
    """One fault x one mutant x scheme 2 x the bolus scenario (fast)."""
    options = dict(
        name="tiny-matrix",
        fault_plans=(STUCK_BUTTON,),
        mutants=(MOTOR_DROP,),
        fault_schemes=(2,),
        mutant_schemes=(2,),
        cases=("bolus-request",),
        samples=2,
    )
    options.update(overrides)
    return FaultMatrixSpec(**options)


class TestSpecExpansion:
    def test_baselines_come_first_and_indices_are_sequential(self):
        runs = tiny_spec().expand()
        assert [run.index for run in runs] == list(range(len(runs)))
        assert runs[0].faults is None and runs[0].mutant is None
        assert runs[1].faults is not None and runs[1].mutant is None
        assert runs[2].faults is None and runs[2].mutant is not None

    def test_injected_runs_share_the_baseline_seeds(self):
        """Only the defect may differ between a baseline and an injected run."""
        baseline, faulted, mutated = tiny_spec().expand()
        assert faulted.sut_seed == baseline.sut_seed
        assert faulted.case_seed == baseline.case_seed
        assert mutated.sut_seed == baseline.sut_seed
        assert mutated.case_seed == baseline.case_seed

    def test_size_matches_expansion(self):
        spec = tiny_spec(fault_schemes=(1, 2), cases=("bolus-request", "alarm-clear"))
        assert spec.size == len(spec.expand())

    def test_labels_carry_the_injected_coordinate(self):
        _, faulted, mutated = tiny_spec().expand()
        assert "+stuck-button" in faulted.label
        assert "+drop:t_start_infusion:0:o-MotorState" in mutated.label

    def test_spec_to_dict_is_canonical(self):
        payload = tiny_spec().to_dict()
        assert payload["fault_plans"][0]["name"] == "stuck-button"
        assert payload["mutants"][0]["mutant_id"] == MOTOR_DROP.mutant_id
        assert payload["size"] == 3

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            tiny_spec(cases=("not-a-scenario",))
        with pytest.raises(ValueError, match="unknown implementation scheme"):
            tiny_spec(fault_schemes=(7,))
        with pytest.raises(ValueError, match="sample count"):
            tiny_spec(samples=0)

    def test_rejects_empty_and_duplicate_axis_points(self):
        # An empty plan would score as a baseline and vanish from the matrix.
        with pytest.raises(ValueError, match="is empty"):
            tiny_spec(fault_plans=(FaultPlan(),))
        with pytest.raises(ValueError, match="unique"):
            tiny_spec(fault_plans=(STUCK_BUTTON, STUCK_BUTTON))
        with pytest.raises(ValueError, match="unique"):
            tiny_spec(mutants=(MOTOR_DROP, MOTOR_DROP))


class TestScoring:
    @pytest.fixture(scope="class")
    def matrix(self) -> KillMatrix:
        return run_kill_matrix(tiny_spec())

    def test_stuck_button_is_detected(self, matrix):
        assert matrix.detected_faults() == ["stuck-button"]
        assert matrix.fault_detecting_cases("stuck-button") == ["bolus-request"]

    def test_motor_drop_mutant_is_killed(self, matrix):
        assert matrix.killed_mutants() == [MOTOR_DROP.mutant_id]
        assert matrix.surviving_mutants() == []
        assert matrix.mutation_score == 1.0

    def test_render_summarises_both_axes(self, matrix):
        rendered = matrix.render()
        assert "fault classes detected: 1/1" in rendered
        assert "mutation score: 1/1 (100%)" in rendered
        assert "KILL" in rendered

    def test_to_dict_records_cells_deterministically(self, matrix):
        payload = matrix.to_dict()
        assert payload["mutation_score"] == 1.0
        assert payload["faults"]["stuck-button"]["detected"] is True
        assert payload["faults"]["stuck-button"]["detected_by"] == ["bolus-request"]
        cell = payload["mutants"][MOTOR_DROP.mutant_id]["cells"][0]
        assert cell["baseline_passed"] is True and cell["killed"] is True

    def test_unscoreable_when_baseline_fails(self):
        # Scheme 3 fails bolus-request on its own; nothing can be attributed.
        matrix = run_kill_matrix(tiny_spec(fault_schemes=(3,), mutant_schemes=(3,)))
        assert matrix.detected_faults() == []
        assert matrix.killed_mutants() == []
        assert "(base fails)" in matrix.render()

    def test_mutation_score_is_none_without_a_mutant_axis(self):
        matrix = run_kill_matrix(tiny_spec(mutants=()))
        assert matrix.mutation_score is None


class TestCampaignIntegration:
    def test_matrix_campaign_is_deterministic(self):
        spec = tiny_spec()
        first = CampaignRunner(spec, workers=1).run()
        second = CampaignRunner(spec, workers=1).run()
        assert first.to_json() == second.to_json()

    @pytest.mark.slow
    def test_parallel_matrix_aggregate_is_byte_identical_to_serial(self):
        spec = tiny_spec()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert serial.to_json() == parallel.to_json()
