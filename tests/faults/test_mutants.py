"""Unit tests for the model-mutant generator and mutant application."""

from __future__ import annotations

import pickle

import pytest

from repro.campaign import chart_fingerprint
from repro.faults import MutantError, MutantSpec, generate_mutants
from repro.gpca.model import build_extended_statechart, build_fig2_statechart
from repro.model.builder import StatechartBuilder
from repro.model.temporal import at


def guarded_chart():
    """A minimal chart with a guarded transition (the GPCA charts have none)."""
    return (
        StatechartBuilder("guarded")
        .input_events("i-Go")
        .output_variable("o-Out", initial=0)
        .local_variable("armed", initial=1)
        .state("A", initial=True)
        .state("B")
        .state("C")
        .transition(
            "t_go", "A", "B", event="i-Go",
            guard=lambda context: context["armed"] == 1,
            assign={"o-Out": 1},
        )
        .transition("t_back", "B", "A", temporal=at(10), assign={"o-Out": 0})
        .build()
    )


class TestGeneration:
    def test_fig2_mutant_set_is_deterministic(self):
        first = generate_mutants(build_fig2_statechart())
        second = generate_mutants(build_fig2_statechart())
        assert first == second
        assert len(first) == 12

    def test_before_bound_mutants_are_excluded_as_known_equivalent(self):
        mutants = generate_mutants(build_fig2_statechart())
        assert not any(
            m.operator == "timing" and m.transition == "t_start_infusion" for m in mutants
        )
        included = generate_mutants(build_fig2_statechart(), include_equivalent=True)
        assert any(
            m.operator == "timing" and m.transition == "t_start_infusion" for m in included
        )
        assert len(included) > len(mutants)

    def test_structural_dedup_discards_identity_candidates(self):
        # A timing scale of 1.0 reproduces the original bound; the candidate's
        # fingerprint equals the original chart's and must be discarded.
        mutants = generate_mutants(
            build_fig2_statechart(), operators=("timing",), timing_scales=(1.0,)
        )
        assert mutants == ()

    def test_guard_negation_generated_only_for_guarded_transitions(self):
        assert not any(
            m.operator == "guard-negate" for m in generate_mutants(build_fig2_statechart())
        )
        guarded = generate_mutants(guarded_chart(), operators=("guard-negate",))
        assert [m.transition for m in guarded] == ["t_go"]

    def test_extended_chart_yields_a_larger_set(self):
        assert len(generate_mutants(build_extended_statechart())) > 20

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation operator"):
            generate_mutants(build_fig2_statechart(), operators=("typo",))

    def test_specs_are_picklable(self):
        mutants = generate_mutants(build_fig2_statechart())
        assert pickle.loads(pickle.dumps(mutants)) == mutants

    def test_round_trips_through_dict(self):
        for mutant in generate_mutants(build_fig2_statechart()):
            assert MutantSpec.from_dict(mutant.to_dict()) == mutant


class TestApplication:
    def test_apply_leaves_the_original_chart_untouched(self):
        chart = build_fig2_statechart()
        fingerprint = chart_fingerprint(chart)
        for mutant in generate_mutants(chart):
            mutated = mutant.apply(chart)
            assert chart_fingerprint(mutated) != fingerprint
            assert chart_fingerprint(chart) == fingerprint

    def test_timing_mutation_changes_the_bound(self):
        chart = build_fig2_statechart()
        spec = MutantSpec(
            operator="timing", transition="t_bolus_done",
            mutant_id="timing:t_bolus_done:2000", ticks=2000,
        )
        assert spec.apply(chart).transition("t_bolus_done").temporal.ticks == 2000

    def test_retarget_changes_the_target_state(self):
        chart = build_fig2_statechart()
        spec = MutantSpec(
            operator="retarget", transition="t_bolus_req",
            mutant_id="retarget:t_bolus_req:Infusion", target="Infusion",
        )
        assert spec.apply(chart).transition("t_bolus_req").target == "Infusion"

    def test_action_drop_removes_exactly_one_assignment(self):
        chart = build_fig2_statechart()
        spec = MutantSpec(
            operator="action-drop", transition="t_empty_alarm",
            mutant_id="drop:t_empty_alarm:0:o-MotorState", action_index=0,
        )
        original = chart.transition("t_empty_alarm").actions
        mutated = spec.apply(chart).transition("t_empty_alarm").actions
        assert len(mutated) == len(original) - 1
        assert mutated == original[1:]

    def test_guard_negation_inverts_the_guard(self):
        chart = guarded_chart()
        spec = MutantSpec(
            operator="guard-negate", transition="t_go", mutant_id="negate:t_go"
        )
        mutated = spec.apply(chart).transition("t_go")
        assert mutated.guard({"armed": 1}) is False
        assert mutated.guard({"armed": 0}) is True

    def test_apply_rejects_mismatched_specs(self):
        chart = build_fig2_statechart()
        with pytest.raises(MutantError):
            MutantSpec(
                operator="timing", transition="t_bolus_req",
                mutant_id="bad", ticks=5,
            ).apply(chart)  # event-triggered transition has no temporal bound
        with pytest.raises(MutantError):
            MutantSpec(
                operator="action-drop", transition="t_bolus_req",
                mutant_id="bad", action_index=0,
            ).apply(chart)  # t_bolus_req has no actions
        with pytest.raises(MutantError):
            MutantSpec(
                operator="retarget", transition="missing",
                mutant_id="bad", target="Idle",
            ).apply(chart)

    def test_mutated_charts_still_generate_code(self):
        from repro.codegen import generate_code

        chart = build_fig2_statechart()
        # A mutated model must stay a valid code-generation input: the kill
        # matrix regenerates CODE(M) from every mutant inside the workers.
        mutants = generate_mutants(chart)
        spot_checks = (mutants[0], mutants[len(mutants) // 2], mutants[-1])
        for mutant in spot_checks:
            artifacts = generate_code(mutant.apply(chart))
            assert artifacts.code_model.transition_names

    def test_before_timing_mutant_is_behaviourally_equivalent_in_code(self):
        """Why `before` bounds are excluded: generated code fires eagerly."""
        from repro.codegen import generate_code

        chart = build_fig2_statechart()
        ticks = chart.transition("t_start_infusion").temporal.ticks
        spec = MutantSpec(
            operator="timing", transition="t_start_infusion",
            mutant_id=f"timing:t_start_infusion:{ticks * 2}", ticks=ticks * 2,
        )
        original = generate_code(chart).new_instance()
        mutated = generate_code(spec.apply(chart)).new_instance()
        for runtime in (original, mutated):
            runtime.set_input("i-BolusReq", True)
            runtime.scan()
        assert original.state_name == mutated.state_name == "Infusion"
        assert original.outputs == mutated.outputs

    def test_rejects_unknown_operator_in_spec(self):
        with pytest.raises(ValueError):
            MutantSpec(operator="swap", transition="t", mutant_id="bad")
