"""The empty fault plan is a strict no-op (acceptance-pinned).

Instrumenting a system with an empty :class:`FaultPlan` must leave traces and
R-/M-test reports **byte-identical** to the un-instrumented platform, across
all three implementation schemes.  This is what makes the kill matrix's
baseline runs trustworthy: the faults machinery cannot perturb a clean run.
"""

from __future__ import annotations

import pytest

from repro.campaign import execute_run
from repro.campaign.spec import RunSpec, derive_seed
from repro.core.m_testing import MTestAnalyzer
from repro.core.r_testing import execute_r_test
from repro.core.serialization import m_report_to_dict, r_report_to_dict
from repro.faults import FaultPlan
from repro.gpca import bolus_request_test_case, build_pump_interface
from repro.gpca.pump import build_scheme_system


def trace_signature(trace):
    return [
        (event.kind.value, event.variable, event.value, event.timestamp_us)
        for event in trace.events
    ]


@pytest.mark.parametrize("scheme", [1, 2, 3])
def test_empty_plan_keeps_traces_and_reports_byte_identical(scheme):
    test_case = bolus_request_test_case(samples=3, seed=7)

    def clean_factory():
        return build_scheme_system(scheme, seed=scheme * 11)

    def instrumented_factory():
        return FaultPlan().instrument(build_scheme_system(scheme, seed=scheme * 11), seed=5)

    clean = execute_r_test(clean_factory, test_case)
    instrumented = execute_r_test(instrumented_factory, test_case)

    assert trace_signature(instrumented.trace) == trace_signature(clean.trace)
    assert r_report_to_dict(instrumented) == r_report_to_dict(clean)

    analyzer = MTestAnalyzer(build_pump_interface(), test_case.requirement)
    clean_m = analyzer.analyze(clean.trace, sut_name=clean.sut_name)
    instrumented_m = analyzer.analyze(instrumented.trace, sut_name=instrumented.sut_name)
    assert m_report_to_dict(instrumented_m) == m_report_to_dict(clean_m)


def test_worker_treats_empty_plan_and_no_plan_identically():
    """A RunSpec with ``faults=FaultPlan()`` must execute exactly like one
    with ``faults=None`` (payloads compared byte for byte)."""
    seeds = dict(
        case_seed=derive_seed(0, "case", "bolus-request", 2),
        sut_seed=derive_seed(0, "sut", 2, None, None, "bolus-request"),
    )
    bare = RunSpec(index=0, scheme=2, case="bolus-request", samples=2, m_test="all", **seeds)
    empty = RunSpec(
        index=0, scheme=2, case="bolus-request", samples=2, m_test="all",
        faults=FaultPlan(), **seeds,
    )
    bare_record = execute_run(bare)
    empty_record = execute_run(empty)
    assert empty_record.r_payload == bare_record.r_payload
    assert empty_record.m_payload == bare_record.m_payload
