"""The system-pack registry: lookup, aggregation and error reporting."""

from __future__ import annotations

import pytest

from repro.systems import (
    CRUISE_PACK,
    DEFAULT_SYSTEM,
    GPCA_PACK,
    MODEL_BUILDERS,
    PACEMAKER_PACK,
    SystemPack,
    get_pack,
    iter_packs,
    model_system,
    pack_ids,
    register_pack,
)


class TestLookup:
    def test_default_system_is_gpca_and_registers_first(self):
        assert DEFAULT_SYSTEM == "gpca"
        assert pack_ids() == ("gpca", "pacemaker", "cruise")
        assert get_pack("gpca") is GPCA_PACK
        assert get_pack("pacemaker") is PACEMAKER_PACK
        assert get_pack("cruise") is CRUISE_PACK

    def test_iter_packs_yields_registration_order(self):
        assert [pack.system_id for pack in iter_packs()] == list(pack_ids())

    def test_unknown_system_lists_known_ids(self):
        with pytest.raises(ValueError, match=r"unknown system 'infusionator'"):
            get_pack("infusionator")
        with pytest.raises(ValueError, match=r"known: cruise, gpca, pacemaker"):
            get_pack("infusionator")

    def test_model_builders_aggregate_every_pack(self):
        assert set(MODEL_BUILDERS) == {"fig2", "extended", "pacemaker", "cruise"}

    def test_model_system_maps_each_model_to_its_pack(self):
        assert model_system("fig2") == "gpca"
        assert model_system("extended") == "gpca"
        assert model_system("pacemaker") == "pacemaker"
        assert model_system("cruise") == "cruise"

    def test_unknown_model_lists_known_models(self):
        with pytest.raises(ValueError, match=r"unknown model 'fig3'"):
            model_system("fig3")


class TestRegistration:
    def test_duplicate_system_id_is_rejected(self):
        clone = SystemPack(
            system_id="gpca",
            title=GPCA_PACK.title,
            description=GPCA_PACK.description,
            default_model="fig2",
            model_builders=dict(GPCA_PACK.model_builders),
            build_interface=GPCA_PACK.build_interface,
            build_system=GPCA_PACK.build_system,
            case_builders=dict(GPCA_PACK.case_builders),
            requirements=GPCA_PACK.requirements,
            scenario_space=GPCA_PACK.scenario_space,
            fault_suite=GPCA_PACK.fault_suite,
        )
        with pytest.raises(ValueError, match="already registered"):
            register_pack(clone)

    def test_pack_default_model_must_be_buildable(self):
        with pytest.raises(ValueError, match="default model 'missing'"):
            SystemPack(
                system_id="broken",
                title="broken",
                description="broken",
                default_model="missing",
                model_builders=dict(GPCA_PACK.model_builders),
                build_interface=GPCA_PACK.build_interface,
                build_system=GPCA_PACK.build_system,
                case_builders=dict(GPCA_PACK.case_builders),
                requirements=GPCA_PACK.requirements,
                scenario_space=GPCA_PACK.scenario_space,
                fault_suite=GPCA_PACK.fault_suite,
            )


class TestPackInventories:
    @pytest.mark.parametrize("pack", [GPCA_PACK, PACEMAKER_PACK, CRUISE_PACK])
    def test_every_pack_ships_a_full_inventory(self, pack):
        assert pack.schemes == (1, 2, 3)
        assert pack.default_model in pack.model_builders
        assert pack.case_builders
        assert len(pack.requirements()) >= 3
        space = pack.scenario_space()
        assert space.requirements
        for scheme in pack.schemes:
            assert pack.scheme_name(scheme)

    @pytest.mark.parametrize("pack", [PACEMAKER_PACK, CRUISE_PACK])
    def test_new_pack_fault_suites_are_lazy_and_nonempty(self, pack):
        plans = pack.fault_suite()
        assert len(plans) >= 3
        assert len({plan.name for plan in plans}) == len(plans)
