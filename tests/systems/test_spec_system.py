"""The ``system`` axis on campaign specs: round-trips and legacy compatibility."""

from __future__ import annotations

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    CasePoint,
    RunSpec,
    SchemePoint,
    M_TEST_NONE,
    build_case,
    case_requirement,
    table_one_spec,
)


def pacemaker_point(case: str = "sense-inhibit", samples: int = 2) -> CasePoint:
    return CasePoint(case, samples=samples, system="pacemaker")


class TestCasePoint:
    def test_accepts_cases_of_the_named_pack(self):
        assert pacemaker_point().system == "pacemaker"
        assert CasePoint("engage", samples=2, system="cruise").case == "engage"

    def test_rejects_cases_of_other_packs(self):
        with pytest.raises(ValueError, match="unknown campaign scenario 'bolus-request'"):
            CasePoint("bolus-request", samples=2, system="pacemaker")

    def test_rejects_unknown_system(self):
        with pytest.raises(ValueError, match="unknown system 'nope'"):
            CasePoint("sense-inhibit", samples=2, system="nope")


class TestRunSpecSerialization:
    def test_default_system_is_omitted_from_payload(self):
        run = table_one_spec(samples=2).expand()[0]
        payload = run.to_dict()
        assert "system" not in payload
        assert RunSpec.from_dict(payload) == run

    def test_non_default_system_round_trips(self):
        spec = CampaignSpec(
            name="pm",
            schemes=(SchemePoint(2),),
            cases=(pacemaker_point(),),
            m_test=M_TEST_NONE,
            model="pacemaker",
        )
        run = spec.expand()[0]
        payload = run.to_dict()
        assert payload["system"] == "pacemaker"
        rebuilt = RunSpec.from_dict(payload)
        assert rebuilt == run
        assert rebuilt.system == "pacemaker"

    def test_legacy_payload_without_system_defaults_to_gpca(self):
        run = table_one_spec(samples=2).expand()[0]
        payload = run.to_dict()
        payload.pop("system", None)
        assert RunSpec.from_dict(payload).system == "gpca"

    def test_non_default_system_is_visible_in_the_label(self):
        spec = CampaignSpec(
            name="pm",
            schemes=(SchemePoint(2),),
            cases=(pacemaker_point(),),
            m_test=M_TEST_NONE,
            model="pacemaker",
        )
        assert spec.expand()[0].label == "scheme2/pacemaker:sense-inhibit"


class TestCampaignSpecSystems:
    def test_case_payload_omits_default_system(self):
        payload = table_one_spec(samples=2).to_dict()
        assert all("system" not in case for case in payload["cases"])

    def test_campaign_round_trips_mixed_systems(self):
        spec = CampaignSpec(
            name="mixed",
            schemes=(SchemePoint(1), SchemePoint(2)),
            cases=(
                CasePoint("bolus-request", samples=2),
                pacemaker_point(),
                CasePoint("engage", samples=2, system="cruise"),
            ),
            m_test=M_TEST_NONE,
        )
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_expand_resolves_each_packs_default_model(self):
        spec = CampaignSpec(
            name="mixed",
            schemes=(SchemePoint(2),),
            cases=(
                CasePoint("bolus-request", samples=2),
                pacemaker_point(),
                CasePoint("engage", samples=2, system="cruise"),
            ),
            m_test=M_TEST_NONE,
        )
        models = {run.system: run.model for run in spec.expand()}
        assert models == {"gpca": "fig2", "pacemaker": "pacemaker", "cruise": "cruise"}

    def test_seed_coordinates_fold_the_system_in(self):
        # Two case points with the same name in different packs must derive
        # different seeds; the gpca point keeps its historical derivation.
        gpca = CampaignSpec(
            name="a",
            schemes=(SchemePoint(2),),
            cases=(CasePoint("bolus-request", samples=2),),
            m_test=M_TEST_NONE,
        ).expand()[0]
        pm = CampaignSpec(
            name="a",
            schemes=(SchemePoint(2),),
            cases=(pacemaker_point("sense-inhibit", 2),),
            m_test=M_TEST_NONE,
            model="pacemaker",
        ).expand()[0]
        assert gpca.case_seed != pm.case_seed
        assert gpca.sut_seed != pm.sut_seed


class TestBuildCase:
    def test_build_case_resolves_through_the_pack(self):
        case = build_case("sense-inhibit", 3, 5, model="pacemaker", system="pacemaker")
        assert case.requirement.requirement_id == "PACE1"
        assert len(case.stimuli) == 3

    def test_case_requirement_is_system_aware(self):
        assert case_requirement("engage", system="cruise").requirement_id == "CC1"
        assert case_requirement("bolus-request").requirement_id == "REQ1"

    def test_unknown_case_error_lists_the_packs_cases(self):
        with pytest.raises(ValueError, match="magnet-pace"):
            build_case("nope", 2, 0, system="pacemaker")
