"""GPCA byte-identity pins across the systems refactor.

These hashes were captured on the pre-registry implementation.  They pin the
refactor's central promise: routing the GPCA pump through the system-pack
registry changes *nothing* about its serialized specs, store coordinates,
R-/M-report payloads or campaign aggregates — not a byte.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import full_grid_spec, scenario_grid_spec, table_one_spec
from repro.faults.matrix import default_matrix_spec
from repro.store.keys import run_coordinate, run_key

#: SHA-256 of the canonical JSON rendering, captured before the refactor.
TABLE_ONE_RESULT_SHA = "2a7c7c9c584da1ae3cf5089c66d07c32408298a3e9cffd4f4b15ca3722fbbfd7"
RUN_KEYS = (
    "a6e0a91311b546ea1ffb01ce48fe5886dcde446c12fc3be00d1effcfc8d2285c",  # scheme 1
    "1b4c39dc60f4fbf799d032b9949a37d31d183d6cac47e563066510bf3046d475",  # scheme 2
    "343a74aaf4defdea9d9b96473b042e86314675cf132c593739938496dc83715d",  # scheme 3
)
RUN0_R_PAYLOAD_SHA = "04fc9b34abd316e590beeb5b34aacce06b1cd11085eb1eef6804fc2002bc4443"
RUN0_M_PAYLOAD_SHA = "c1a64f5bb271239f00729e09c3b18ec3a0cd335111dc70255742d30f3c168f7a"
MATRIX_SPEC_SHA = "712f57f13aa03071bfac32372a7ccf2e203d33fa6c44e5217d4fb22a456ea8bc"
SCENARIO_GRID_SHA = "8c5a081cab51e34ce3e2631393af9a2869c5a12291ec7ec2c8e6c6d1ae24cfab"
FULL_GRID_SHA = "e60c5e1991454cd466129f68f7cc542318ffea86c1a1aac71906cc9809f16e02"


def canonical_sha(payload) -> str:
    rendering = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()


class TestSpecPins:
    def test_kill_matrix_spec_is_byte_identical(self):
        spec = default_matrix_spec(samples=2, base_seed=0)
        assert canonical_sha(spec.to_dict()) == MATRIX_SPEC_SHA
        labels = [run.label for run in spec.expand()[:3]]
        assert labels == [
            "scheme1/alarm-clear",
            "scheme1/bolus-request",
            "scheme1/empty-reservoir-alarm",
        ]

    def test_scenario_and_full_grids_are_byte_identical(self):
        assert canonical_sha(scenario_grid_spec(samples=3).to_dict()) == SCENARIO_GRID_SHA
        assert canonical_sha(full_grid_spec(samples=2).to_dict()) == FULL_GRID_SHA


@pytest.mark.slow
class TestCampaignPins:
    @pytest.fixture(scope="class")
    def table_one_result(self):
        return CampaignRunner(table_one_spec(samples=4), workers=1).run()

    def test_table_one_aggregate_is_byte_identical(self, table_one_result):
        digest = hashlib.sha256(table_one_result.to_json().encode("utf-8")).hexdigest()
        assert digest == TABLE_ONE_RESULT_SHA

    def test_store_keys_and_coordinates_are_unchanged(self, table_one_result):
        specs = [record.spec for record in table_one_result.records]
        assert tuple(run_key(spec) for spec in specs) == RUN_KEYS
        # Legacy coordinates carry no "system" entry at all.
        for spec in specs:
            assert "system" not in run_coordinate(spec)

    def test_run_payloads_are_byte_identical(self, table_one_result):
        run0 = table_one_result.records[0]
        assert canonical_sha(run0.r_payload) == RUN0_R_PAYLOAD_SHA
        assert canonical_sha(run0.m_payload) == RUN0_M_PAYLOAD_SHA

    def test_scheme_labels_still_come_out_as_the_paper_names(self, table_one_result):
        rendered = table_one_result.table_one().render()
        assert "Scheme 1 (single-threaded)" in rendered
        assert "Scheme 2 (multi-threaded)" in rendered
        assert "Scheme 3 (multi-threaded + interference)" in rendered
