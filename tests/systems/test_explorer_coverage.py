"""Coverage-guided exploration of the new packs' scenario spaces.

The acceptance bar from the PR: each pack's scenario space must let the
stock explorer reach *full* chart transition coverage, just as the GPCA
space does for fig2.
"""

from __future__ import annotations

import pytest

from repro.campaign import ArtifactCache
from repro.scenarios import CoverageGuidedExplorer
from repro.systems import CRUISE_PACK, PACEMAKER_PACK


def explore(pack, episodes, *, seed=0):
    artifacts = ArtifactCache().artifacts_for_model(pack.default_model)

    def factory():
        return pack.build_system(1, seed=11, artifacts=artifacts)

    explorer = CoverageGuidedExplorer(
        pack.scenario_space(), factory, artifacts.code_model, seed=seed
    )
    return explorer.explore(episodes)


@pytest.mark.slow
class TestFullTransitionCoverage:
    def test_cruise_reaches_full_coverage(self):
        report = explore(CRUISE_PACK, 40)
        assert report.transition_coverage.ratio == 1.0, sorted(
            report.transition_coverage.uncovered
        )

    def test_pacemaker_reaches_full_coverage(self):
        report = explore(PACEMAKER_PACK, 60)
        assert report.transition_coverage.ratio == 1.0, sorted(
            report.transition_coverage.uncovered
        )


class TestExplorationSmoke:
    @pytest.mark.parametrize("pack", [PACEMAKER_PACK, CRUISE_PACK], ids=lambda p: p.system_id)
    def test_short_runs_are_deterministic_and_productive(self, pack):
        first = explore(pack, 6)
        second = explore(pack, 6)
        assert first.to_dict() == second.to_dict()
        assert first.transition_coverage.ratio > 0.0
