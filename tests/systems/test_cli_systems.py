"""CLI coverage of ``repro systems`` and the ``--system`` flags."""

from __future__ import annotations

import json

from repro.cli import main


class TestSystemsCommand:
    def test_lists_every_registered_pack(self, capsys):
        assert main(["systems"]) == 0
        output = capsys.readouterr().out
        assert "registered systems (3):" in output
        for system in ("gpca", "pacemaker", "cruise"):
            assert system in output
        assert "default fig2" in output

    def test_list_flag_is_an_alias(self, capsys):
        assert main(["systems", "--list"]) == 0
        assert "registered systems (3):" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "systems.json"
        assert main(["systems", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        rows = {row["system"]: row for row in payload["systems"]}
        assert set(rows) == {"gpca", "pacemaker", "cruise"}
        assert rows["pacemaker"]["default_model"] == "pacemaker"
        assert rows["cruise"]["scheme_count"] == 3
        for row in rows.values():
            assert row["requirement_count"] >= 3
            assert row["scenario_space"]["requirement_count"] >= 3


class TestSystemFlags:
    def test_explore_accepts_a_system(self, capsys):
        assert main(["explore", "--system", "cruise", "--episodes", "2"]) == 0
        output = capsys.readouterr().out
        assert "system: cruise" in output
        assert "transition coverage" in output

    def test_explore_rejects_unknown_system(self, capsys):
        assert main(["explore", "--system", "nope", "--episodes", "2"]) == 2
        assert "unknown system 'nope'" in capsys.readouterr().err

    def test_explore_rejects_cross_pack_model(self, capsys):
        assert main(["explore", "--system", "cruise", "--model", "fig2"]) == 2
        assert "unknown model 'fig2' for system 'cruise'" in capsys.readouterr().err

    def test_faults_list_honours_the_system(self, capsys):
        assert main(["faults", "--system", "pacemaker", "--list"]) == 0
        output = capsys.readouterr().out
        assert "fault suite of system 'pacemaker'" in output
        assert "mutants of model 'pacemaker'" in output

    def test_faults_rejects_unknown_system(self, capsys):
        assert main(["faults", "--system", "bogus", "--list"]) == 2
        assert "unknown system 'bogus'" in capsys.readouterr().err
