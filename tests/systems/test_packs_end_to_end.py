"""End-to-end layered testing of the pacemaker and cruise/AEB packs.

Each new pack must survive the paper's full pipeline: statechart lowering
through codegen, R-testing on schemes 1 and 2, a scheme-3 verdict, and
M-test segment analysis of the recorded trace.
"""

from __future__ import annotations

import pytest

from repro.campaign import ArtifactCache
from repro.core.m_testing import MTestAnalyzer
from repro.core.r_testing import execute_r_test
from repro.systems import CRUISE_PACK, PACEMAKER_PACK

PACKS = {
    "pacemaker": (PACEMAKER_PACK, "sense-inhibit"),
    "cruise": (CRUISE_PACK, "engage"),
}


@pytest.fixture(scope="module")
def artifact_cache():
    return ArtifactCache()


def run_pack_case(pack, case, scheme, *, samples=3, seed=5, artifacts=None):
    test_case = pack.case_builders[case](samples, seed)

    def factory():
        return pack.build_system(scheme, seed=11, artifacts=artifacts)

    return execute_r_test(factory, test_case), test_case


@pytest.mark.parametrize("pack_id", sorted(PACKS))
class TestRTesting:
    def test_schemes_one_and_two_conform(self, pack_id, artifact_cache):
        pack, case = PACKS[pack_id]
        artifacts = artifact_cache.artifacts_for_model(pack.default_model)
        for scheme in (1, 2):
            report, _ = run_pack_case(pack, case, scheme, artifacts=artifacts)
            assert report.passed, report.summary()
            assert len(report.samples) == 3

    def test_scheme_three_reaches_a_verdict(self, pack_id, artifact_cache):
        pack, case = PACKS[pack_id]
        artifacts = artifact_cache.artifacts_for_model(pack.default_model)
        report, _ = run_pack_case(pack, case, 3, artifacts=artifacts)
        # Under interference the verdict may go either way; what matters is
        # that the harness measures every sample and renders a report.
        assert report.passed in (True, False)
        assert len(report.samples) == 3
        assert report.summary()

    def test_every_fixed_case_passes_on_scheme_two(self, pack_id, artifact_cache):
        pack, _ = PACKS[pack_id]
        artifacts = artifact_cache.artifacts_for_model(pack.default_model)
        for case in sorted(pack.case_builders):
            report, _ = run_pack_case(pack, case, 2, artifacts=artifacts)
            assert report.passed, f"{pack.system_id}/{case}: {report.summary()}"


@pytest.mark.parametrize("pack_id", sorted(PACKS))
class TestMTesting:
    def test_traces_segment_under_the_m_analyzer(self, pack_id, artifact_cache):
        pack, case = PACKS[pack_id]
        artifacts = artifact_cache.artifacts_for_model(pack.default_model)
        report, test_case = run_pack_case(pack, case, 2, artifacts=artifacts)
        analyzer = MTestAnalyzer(pack.build_interface(), test_case.requirement)
        m_report = analyzer.analyze(report.trace, sut_name=report.sut_name)
        assert len(m_report.complete_segments) >= 1
        assert m_report.summary()
