"""Mixed-system campaigns: one grid spanning all three packs."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner
from repro.campaign.spec import CampaignSpec, CasePoint, SchemePoint, M_TEST_NONE


def mixed_spec(samples: int = 2) -> CampaignSpec:
    return CampaignSpec(
        name="mixed-systems",
        schemes=(SchemePoint(2),),
        cases=(
            CasePoint("bolus-request", samples=samples),
            CasePoint("sense-inhibit", samples=samples, system="pacemaker"),
            CasePoint("engage", samples=samples, system="cruise"),
        ),
        m_test=M_TEST_NONE,
    )


class TestMixedCampaign:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return CampaignRunner(mixed_spec(), workers=1).run()

    def test_every_system_conforms_on_scheme_two(self, serial_result):
        by_system = {record.spec.system: record for record in serial_result.records}
        assert set(by_system) == {"gpca", "pacemaker", "cruise"}
        for system, record in sorted(by_system.items()):
            assert record.passed, f"{system}: {record.spec.label}"

    def test_labels_tag_the_non_default_systems(self, serial_result):
        labels = [record.spec.label for record in serial_result.records]
        assert labels == [
            "scheme2/bolus-request",
            "scheme2/pacemaker:sense-inhibit",
            "scheme2/cruise:engage",
        ]

    def test_table_one_uses_each_packs_scheme_names(self, serial_result):
        assert "Scheme 2" in serial_result.table_one().render()

    @pytest.mark.slow
    def test_parallel_aggregate_is_byte_identical_to_serial(self, serial_result):
        parallel_runner = CampaignRunner(mixed_spec(), workers=2)
        parallel = parallel_runner.run()
        assert parallel.to_json() == serial_result.to_json()

    def test_round_trip_preserves_the_grid(self):
        spec = mixed_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
