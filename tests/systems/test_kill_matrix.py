"""Kill matrices for the pacemaker and cruise packs.

Each pack must field a mutation analysis in which the fixed requirement
scenarios actually kill mutants — the suites are not decorative.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults.matrix import default_matrix_spec, run_kill_matrix

PACEMAKER_MUTANTS = (
    "retarget:t_sense_inhibit:MagnetTest",
    "drop:t_sense_inhibit:0:o-MarkerState",
)
CRUISE_MUTANTS = (
    "retarget:t_engage:Override",
    "drop:t_engage:0:o-ThrottleState",
)


def small_matrix(system, mutant_ids, case):
    """Carve a fast sub-matrix out of the pack's stock spec."""
    spec = default_matrix_spec(samples=2, base_seed=0, system=system)
    keep = tuple(m for m in spec.mutants if m.mutant_id in mutant_ids)
    assert len(keep) == len(mutant_ids), "expected mutants missing from the pack"
    return dataclasses.replace(
        spec,
        mutants=keep,
        fault_plans=spec.fault_plans[:2],
        cases=(case,),
        fault_schemes=(2,),
        mutant_schemes=(2,),
    )


class TestPackDefaults:
    @pytest.mark.parametrize("system", ["pacemaker", "cruise"])
    def test_stock_spec_has_both_axes(self, system):
        spec = default_matrix_spec(samples=2, system=system)
        assert spec.system == system
        assert len(spec.fault_plans) >= 3
        assert len(spec.mutants) >= 5
        assert spec.size > 0

    def test_model_must_belong_to_the_system(self):
        with pytest.raises(ValueError, match="unknown model 'fig2' for system 'pacemaker'"):
            default_matrix_spec(model="fig2", system="pacemaker")


@pytest.mark.slow
class TestPacemakerKills:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_kill_matrix(small_matrix("pacemaker", PACEMAKER_MUTANTS, "sense-inhibit"))

    def test_both_mutants_are_killed(self, matrix):
        assert set(matrix.killed_mutants()) == set(PACEMAKER_MUTANTS)
        assert matrix.mutation_score == 1.0

    def test_render_shows_kills(self, matrix):
        assert "KILL" in matrix.render()


@pytest.mark.slow
class TestCruiseKills:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_kill_matrix(small_matrix("cruise", CRUISE_MUTANTS, "engage"))

    def test_both_mutants_are_killed(self, matrix):
        assert set(matrix.killed_mutants()) == set(CRUISE_MUTANTS)
        assert matrix.mutation_score == 1.0
