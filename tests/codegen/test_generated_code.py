"""Unit tests for the CODE(M) runtime and its equivalence with the model."""

import pytest

from repro.codegen.generated import GeneratedCodeError
from repro.model.simulation import ModelExecutor


class TestBasicExecution:
    def test_initial_configuration(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        assert code.state_name == "Idle"
        assert code.outputs == {"o-MotorState": 0, "o-BuzzerState": 0}
        assert all(value is False for value in code.inputs.values())

    def test_event_transition_consumes_input(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        code.set_input("i-BolusReq")
        row = code.enabled_transition()
        assert row.name == "t_bolus_req"
        code.fire(row)
        assert code.inputs["i-BolusReq"] is False
        assert code.state_name == "BolusRequested"

    def test_scan_runs_to_completion(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        code.set_input("i-BolusReq")
        firings = code.scan()
        assert [firing.transition.name for firing in firings] == [
            "t_bolus_req",
            "t_start_infusion",
        ]
        assert code.output("o-MotorState") == 1

    def test_scan_with_limit_takes_one_transition(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        code.set_input("i-BolusReq")
        firings = code.scan(max_transitions=1)
        assert len(firings) == 1
        assert code.state_name == "BolusRequested"

    def test_at_transition_requires_clock(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        code.set_input("i-BolusReq")
        code.scan()
        assert code.enabled_transition() is None
        code.advance_clock(3999)
        assert code.enabled_transition() is None
        code.advance_clock(1)
        assert code.enabled_transition().name == "t_bolus_done"

    def test_state_clock_resets_on_transition(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        code.advance_clock(500)
        code.set_input("i-BolusReq")
        code.scan()
        assert code.state_clock_ticks == 0

    def test_unknown_input_rejected(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        with pytest.raises(GeneratedCodeError):
            code.set_input("i-Nope")

    def test_unknown_output_rejected(self, fig2_artifacts):
        with pytest.raises(GeneratedCodeError):
            fig2_artifacts.new_instance().output("o-Nope")

    def test_fire_from_wrong_state_rejected(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        row = [r for r in code.model.transitions if r.name == "t_bolus_done"][0]
        with pytest.raises(GeneratedCodeError):
            code.fire(row)

    def test_negative_clock_rejected(self, fig2_artifacts):
        with pytest.raises(GeneratedCodeError):
            fig2_artifacts.new_instance().advance_clock(-1)

    def test_reset(self, fig2_artifacts):
        code = fig2_artifacts.new_instance()
        code.set_input("i-BolusReq")
        code.scan()
        code.reset()
        assert code.state_name == "Idle"
        assert code.outputs == {"o-MotorState": 0, "o-BuzzerState": 0}
        assert code.firing_history == []


class TestModelEquivalence:
    """The generated code must preserve the model behaviour (functionally)."""

    SCENARIOS = [
        # (name, list of (advance_ticks, [events]))
        ("bolus", [(10, ["i-BolusReq"]), (4200, [])]),
        ("bolus_then_alarm", [(10, ["i-BolusReq"]), (500, ["i-EmptyAlarm"]), (100, ["i-ClearAlarm"])]),
        ("ignored_events", [(5, ["i-ClearAlarm"]), (5, ["i-EmptyAlarm"]), (5, ["i-BolusReq"])]),
        ("back_to_back_boluses", [(10, ["i-BolusReq"]), (4500, ["i-BolusReq"]), (4500, [])]),
        (
            "alarm_clear_alarm",
            [
                (0, ["i-BolusReq"]),
                (100, ["i-EmptyAlarm"]),
                (50, ["i-ClearAlarm"]),
                (10, ["i-BolusReq"]),
                (4100, []),
            ],
        ),
    ]

    @pytest.mark.parametrize("name,steps", SCENARIOS, ids=[s[0] for s in SCENARIOS])
    def test_outputs_and_state_match_model(self, fig2_chart, fig2_artifacts, name, steps):
        model = ModelExecutor(fig2_chart)
        code = fig2_artifacts.new_instance()
        for advance_ticks, events in steps:
            if advance_ticks:
                model.advance(advance_ticks)
                code.advance_clock(advance_ticks)
                code.scan()
            for event in events:
                model.inject(event)
                code.set_input(event)
                code.scan()
            assert code.outputs == model.outputs, f"outputs diverged in {name}"
            assert code.state_name == model.current_state, f"state diverged in {name}"

    def test_transition_sequences_match(self, fig2_chart, fig2_artifacts):
        model = ModelExecutor(fig2_chart)
        code = fig2_artifacts.new_instance()
        model.inject("i-BolusReq")
        model.advance(4000)
        code.set_input("i-BolusReq")
        code.scan()
        code.advance_clock(4000)
        code.scan()
        model_path = [firing.transition for firing in model.firings]
        code_path = [firing.transition.name for firing in code.firing_history]
        assert model_path == code_path
