"""Unit tests for the traceability map and the execution-time model."""

import pytest

from repro.codegen.execution_model import ExecutionTimeModel
from repro.gpca import TRANS_BOLUS_REQUEST, TRANS_START_INFUSION, arm7_execution_model
from repro.platform.kernel.random import RandomSource, constant, uniform
from repro.platform.kernel.time import ms


class TestTraceability:
    def test_every_row_is_linked(self, fig2_artifacts):
        trace_map = fig2_artifacts.traceability
        assert len(trace_map.links) == len(fig2_artifacts.code_model.transitions)

    def test_row_for_transition_round_trip(self, fig2_artifacts):
        trace_map = fig2_artifacts.traceability
        link = trace_map.row_for_transition("t_start_infusion")
        assert trace_map.transition_for_row(link.row_index).model_transition == "t_start_infusion"
        assert link.source_state == "BolusRequested"
        assert link.target_state == "Infusion"

    def test_unknown_lookups_raise(self, fig2_artifacts):
        trace_map = fig2_artifacts.traceability
        with pytest.raises(KeyError):
            trace_map.row_for_transition("missing")
        with pytest.raises(KeyError):
            trace_map.transition_for_row(999)

    def test_path_between_idle_and_infusion(self, fig2_artifacts):
        path = fig2_artifacts.traceability.path_between("Idle", "Infusion")
        assert [link.model_transition for link in path] == [
            TRANS_BOLUS_REQUEST,
            TRANS_START_INFUSION,
        ]

    def test_path_to_same_state_is_empty(self, fig2_artifacts):
        assert fig2_artifacts.traceability.path_between("Idle", "Idle") == []

    def test_no_path_raises(self, fig2_artifacts):
        # EmptyAlarm only reaches Idle; there is no path Idle -> Idle via 0 hops
        with pytest.raises(KeyError):
            fig2_artifacts.traceability.path_between("EmptyAlarm", "EmptyAlarm2")

    def test_transitions_writing_output(self, fig2_artifacts):
        writers = fig2_artifacts.traceability.transitions_writing("o-MotorState")
        names = {link.model_transition for link in writers}
        assert names == {"t_start_infusion", "t_bolus_done", "t_empty_alarm"}


class TestExecutionTimeModel:
    def test_default_costs_are_positive(self, fig2_artifacts):
        model = ExecutionTimeModel()
        row = fig2_artifacts.code_model.transitions[0]
        assert model.transition_cost(row) > 0
        assert model.input_scan_cost() > 0
        assert model.output_write_cost() > 0

    def test_per_action_cost_added(self, fig2_artifacts):
        model = ExecutionTimeModel(
            transition_base=constant(ms(5)), per_action=constant(ms(2))
        )
        rows = {row.name: row for row in fig2_artifacts.code_model.transitions}
        assert model.transition_cost(rows["t_bolus_req"]) == ms(5)          # no actions
        assert model.transition_cost(rows["t_start_infusion"]) == ms(7)     # one action
        assert model.transition_cost(rows["t_empty_alarm"]) == ms(9)        # two actions

    def test_override_takes_precedence(self, fig2_artifacts):
        model = ExecutionTimeModel(transition_base=constant(ms(5)))
        rows = {row.name: row for row in fig2_artifacts.code_model.transitions}
        model.transition_overrides["t_bolus_req"] = constant(ms(11))
        assert model.transition_cost(rows["t_bolus_req"]) == ms(11)
        assert model.worst_case_transition_us(rows["t_bolus_req"]) == ms(11)

    def test_deterministic_without_rng(self, fig2_artifacts):
        model = arm7_execution_model()
        row = fig2_artifacts.code_model.transitions[0]
        assert model.transition_cost(row) == model.transition_cost(row)

    def test_jitter_bounded(self, fig2_artifacts):
        model = ExecutionTimeModel(transition_base=uniform(ms(10), ms(2)), per_action=constant(0))
        row = fig2_artifacts.code_model.transitions[0]
        rng = RandomSource(1).stream("cost")
        for _ in range(100):
            assert ms(8) <= model.transition_cost(row, rng) <= ms(12)

    def test_scaled_model(self, fig2_artifacts):
        model = arm7_execution_model().scaled(2.0)
        rows = {row.name: row for row in fig2_artifacts.code_model.transitions}
        assert model.transition_overrides[TRANS_BOLUS_REQUEST].nominal_us == 2 * ms(11)
        assert model.transition_cost(rows[TRANS_START_INFUSION]) == pytest.approx(2 * ms(20), rel=0.01)

    def test_arm7_profile_matches_paper_transition_delays(self, fig2_artifacts):
        """The case-study profile lands near the paper's 11 ms / 20 ms delays."""
        model = arm7_execution_model()
        rows = {row.name: row for row in fig2_artifacts.code_model.transitions}
        assert model.transition_cost(rows[TRANS_BOLUS_REQUEST]) == ms(11)
        assert model.transition_cost(rows[TRANS_START_INFUSION]) == ms(20)
