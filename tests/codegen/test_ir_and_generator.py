"""Unit tests for lowering, the generator facade and the C emitter."""

import pytest

from repro.codegen.c_emitter import emit_c_source
from repro.codegen.generator import CodeGenerator, generate_code
from repro.codegen.ir import lower_statechart
from repro.model.builder import StatechartBuilder
from repro.model.statechart import StatechartError
from repro.model.temporal import at, before


class TestLowering:
    def test_states_and_initial_index(self, fig2_chart):
        model = lower_statechart(fig2_chart)
        assert model.state_names == ["Idle", "BolusRequested", "Infusion", "EmptyAlarm"]
        assert model.initial_state_index == 0

    def test_inputs_and_outputs_preserved(self, fig2_chart):
        model = lower_statechart(fig2_chart)
        assert model.input_names == ["i-BolusReq", "i-EmptyAlarm", "i-ClearAlarm"]
        assert model.output_initials == {"o-MotorState": 0, "o-BuzzerState": 0}

    def test_transition_rows_keep_model_names(self, fig2_chart):
        model = lower_statechart(fig2_chart)
        assert model.transition_names == [
            "t_bolus_req",
            "t_start_infusion",
            "t_bolus_done",
            "t_empty_alarm",
            "t_clear_alarm",
        ]

    def test_trigger_kinds(self, fig2_chart):
        model = lower_statechart(fig2_chart)
        kinds = {row.name: row.trigger_kind for row in model.transitions}
        assert kinds["t_bolus_req"] == "event"
        assert kinds["t_start_infusion"] == "before"
        assert kinds["t_bolus_done"] == "at"

    def test_untriggered_transition_becomes_after_zero(self):
        chart = (
            StatechartBuilder("x")
            .output_variable("out")
            .local_variable("flag", initial=0)
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", guard=lambda ctx: ctx["flag"] == 1)
            .build()
        )
        model = lower_statechart(chart)
        row = model.transitions[0]
        assert row.trigger_kind == "after"
        assert row.trigger_param == 0

    def test_actions_classified_output_vs_local(self):
        chart = (
            StatechartBuilder("x")
            .input_event("e")
            .output_variable("out")
            .local_variable("counter", initial=0)
            .state("A", initial=True)
            .state("B")
            .transition("t", "A", "B", event="e", assign={"out": 1, "counter": 2})
            .build()
        )
        row = lower_statechart(chart).transitions[0]
        by_variable = {action.variable: action.is_output for action in row.actions}
        assert by_variable == {"out": True, "counter": False}

    def test_transitions_from_sorted_by_priority(self, fig2_chart):
        model = lower_statechart(fig2_chart)
        infusion_index = model.state_index("Infusion")
        rows = model.transitions_from(infusion_index)
        assert [row.name for row in rows] == ["t_bolus_done", "t_empty_alarm"]


class TestGeneratorFacade:
    def test_generate_produces_all_artifacts(self, fig2_chart):
        artifacts = generate_code(fig2_chart)
        assert artifacts.code_model.name == "gpca_fig2"
        assert "gpca_fig2_step" in artifacts.c_source
        assert len(artifacts.traceability.links) == 5
        assert "5 transitions" in artifacts.summary()

    def test_new_instance_is_independent(self, fig2_artifacts):
        first = fig2_artifacts.new_instance()
        second = fig2_artifacts.new_instance()
        first.set_input("i-BolusReq")
        first.scan()
        assert first.state_name == "Infusion"
        assert second.state_name == "Idle"

    def test_malformed_chart_rejected(self):
        chart = (
            StatechartBuilder("broken")
            .state("A", initial=True)
            .transition("t", "A", "A")
            .build()
        )
        with pytest.raises(StatechartError):
            CodeGenerator().generate(chart)

    def test_extended_chart_generates(self, extended_chart):
        artifacts = generate_code(extended_chart)
        assert len(artifacts.code_model.state_names) == 7


class TestCEmitter:
    def test_emits_state_enum(self, fig2_chart):
        source = emit_c_source(lower_statechart(fig2_chart))
        assert "GPCA_FIG2_STATE_IDLE = 0" in source.upper()
        assert "gpca_fig2_state_t" in source

    def test_emits_io_struct_with_sanitised_identifiers(self, fig2_chart):
        source = emit_c_source(lower_statechart(fig2_chart))
        assert "i_BolusReq" in source
        assert "o_MotorState" in source
        assert "i-BolusReq" not in source.split("/*")[0]

    def test_emits_step_and_init_functions(self, fig2_chart):
        source = emit_c_source(lower_statechart(fig2_chart))
        assert "void gpca_fig2_init(" in source
        assert "void gpca_fig2_step(" in source
        assert "switch (dw->current_state)" in source

    def test_transition_comments_reference_model_names(self, fig2_chart):
        source = emit_c_source(lower_statechart(fig2_chart))
        for name in ("t_bolus_req", "t_start_infusion", "t_bolus_done"):
            assert name in source

    def test_temporal_conditions_rendered(self, fig2_chart):
        source = emit_c_source(lower_statechart(fig2_chart))
        assert "state_clock_ms >= 4000" in source
        assert "before(100)" in source
