"""Hit/miss behaviour of the content-keyed artifact cache."""

from __future__ import annotations

import pytest

from repro.campaign import ArtifactCache, chart_fingerprint, process_cache
from repro.gpca import build_extended_statechart, build_fig2_statechart


class TestArtifactCache:
    def test_first_model_lookup_is_a_miss_then_hits(self):
        cache = ArtifactCache()
        first = cache.artifacts_for_model("fig2")
        assert cache.stats() == {"hits": 0, "misses": 1, "entries": 1}
        second = cache.artifacts_for_model("fig2")
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_models_generate_separately(self):
        cache = ArtifactCache()
        fig2 = cache.artifacts_for_model("fig2")
        extended = cache.artifacts_for_model("extended")
        assert fig2 is not extended
        assert cache.generation_count == 2

    def test_structurally_identical_charts_share_one_generation(self):
        cache = ArtifactCache()
        first = cache.artifacts_for_chart(build_fig2_statechart())
        second = cache.artifacts_for_chart(build_fig2_statechart())
        assert second is first
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_named_lookup_shares_with_equivalent_explicit_chart(self):
        cache = ArtifactCache()
        by_chart = cache.artifacts_for_chart(build_fig2_statechart())
        by_name = cache.artifacts_for_model("fig2")
        assert by_name is by_chart
        assert cache.generation_count == 1

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            ArtifactCache().artifacts_for_model("fig9")

    def test_clear_resets_entries_and_counters(self):
        cache = ArtifactCache()
        cache.artifacts_for_model("fig2")
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert chart_fingerprint(build_fig2_statechart()) == chart_fingerprint(
            build_fig2_statechart()
        )

    def test_distinguishes_models(self):
        assert chart_fingerprint(build_fig2_statechart()) != chart_fingerprint(
            build_extended_statechart()
        )

    def test_sensitive_to_structural_change(self):
        chart = build_fig2_statechart()
        baseline = chart_fingerprint(chart)
        from repro.model.statechart import State

        chart.add_state(State("Extra"))
        assert chart_fingerprint(chart) != baseline

    def test_sensitive_to_behavioural_transition_changes(self):
        """Same wiring, different behaviour must not collide (stale-cache guard)."""
        from repro.model.statechart import Statechart, State, Transition
        from repro.model.declarations import Assign, InputEvent, OutputVariable
        from repro.model.temporal import at

        def build(ticks: int, value: int, priority: int, guarded: bool) -> Statechart:
            chart = Statechart("variant")
            chart.add_state(State("A"), initial=True)
            chart.add_state(State("B"))
            chart.add_input_event(InputEvent("go"))
            chart.add_output_variable(OutputVariable("out", initial=0))
            chart.add_transition(
                Transition(
                    "t1",
                    "A",
                    "B",
                    event="go",
                    actions=(Assign("out", value),),
                    priority=priority,
                    guard=(lambda ctx: ctx.get("x", 0) > 0) if guarded else None,
                )
            )
            chart.add_transition(Transition("t2", "B", "A", temporal=at(ticks)))
            return chart

        base = chart_fingerprint(build(4000, 1, 0, False))
        assert chart_fingerprint(build(4000, 1, 0, False)) == base  # stable
        assert chart_fingerprint(build(8000, 1, 0, False)) != base  # temporal trigger
        assert chart_fingerprint(build(4000, 2, 0, False)) != base  # action value
        assert chart_fingerprint(build(4000, 1, 5, False)) != base  # priority
        assert chart_fingerprint(build(4000, 1, 0, True)) != base   # guard presence

    def test_sensitive_to_closure_captured_guard_constants(self):
        """Guards differing only in captured state must not collide."""
        from repro.campaign.cache import _stable_value_key

        def guard_with(threshold):
            return lambda ctx: ctx.get("x", 0) > threshold

        assert _stable_value_key(guard_with(1)) == _stable_value_key(guard_with(1))
        assert _stable_value_key(guard_with(1)) != _stable_value_key(guard_with(100))

        def guard_default(ctx, threshold=1):
            return ctx.get("x", 0) > threshold

        def guard_default_100(ctx, threshold=100):
            return ctx.get("x", 0) > threshold

        assert _stable_value_key(guard_default) != _stable_value_key(guard_default_100)


def test_process_cache_is_a_singleton_per_process():
    assert process_cache() is process_cache()
