"""CLI coverage of the ``repro campaign`` sub-command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_campaign_table1_prints_summary_and_table(capsys):
    assert main(["campaign", "--grid", "table1", "--samples", "2"]) == 0
    output = capsys.readouterr().out
    assert "campaign 'table1': 3 runs" in output
    assert "TABLE I." in output
    assert "wall clock:" in output


def test_campaign_writes_json_and_csv(tmp_path, capsys):
    json_path = tmp_path / "campaign.json"
    csv_path = tmp_path / "campaign.csv"
    assert (
        main(
            [
                "campaign",
                "--grid",
                "table1",
                "--samples",
                "2",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        == 0
    )
    payload = json.loads(json_path.read_text())
    assert payload["campaign"]["name"] == "table1"
    assert len(payload["runs"]) == 3
    assert all("r" in run and "spec" in run for run in payload["runs"])
    assert csv_path.read_text().startswith("index,")


def test_campaign_sweep_grid_prints_sweep_table(capsys):
    assert main(["campaign", "--grid", "periods", "--samples", "2"]) == 0
    output = capsys.readouterr().out
    assert "period (ms)" in output
    assert "violation rate" in output


@pytest.mark.slow
def test_campaign_baseline_verifies_determinism_and_records_timings(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    assert (
        main(
            [
                "campaign",
                "--grid",
                "table1",
                "--samples",
                "2",
                "--workers",
                "2",
                "--baseline",
                str(baseline_path),
            ]
        )
        == 0
    )
    payload = json.loads(baseline_path.read_text())
    assert payload["byte_identical"] is True
    assert payload["parallel_workers"] == 2
    assert payload["serial_seconds"] > 0
    assert payload["parallel_seconds"] > 0
    assert payload["host"]["cpu_count"] >= 1
    assert "byte-identical: True" in capsys.readouterr().out


def test_campaign_baseline_still_honours_json_export(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    json_path = tmp_path / "campaign.json"
    assert (
        main(
            [
                "campaign",
                "--grid",
                "table1",
                "--samples",
                "2",
                "--baseline",
                str(baseline_path),
                "--json",
                str(json_path),
            ]
        )
        == 0
    )
    assert baseline_path.exists()
    assert len(json.loads(json_path.read_text())["runs"]) == 3


def test_campaign_rejects_invalid_samples(capsys):
    assert main(["campaign", "--samples", "0"]) == 2
    assert "sample count must be positive" in capsys.readouterr().err


def test_campaign_rejects_negative_workers(capsys):
    assert main(["campaign", "--workers", "-1"]) == 2
    assert "worker count cannot be negative" in capsys.readouterr().err
