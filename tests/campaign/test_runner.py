"""Shard determinism and execution semantics of the campaign runner."""

from __future__ import annotations

import pytest

import os

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CasePoint,
    SchemePoint,
    default_worker_count,
    execute_run,
    run_campaign,
    shard_grid,
)


def tiny_spec(m_test: str = "violations") -> CampaignSpec:
    """A fast two-run grid (schemes 1 and 2, two bolus samples each)."""
    return CampaignSpec(
        name="tiny",
        schemes=(SchemePoint(1, sut_seed=11), SchemePoint(2, sut_seed=22)),
        cases=(CasePoint("bolus-request", samples=2, seed=7),),
        m_test=m_test,
    )


class TestShardGrid:
    def test_round_robin_assignment(self):
        runs = tuple(range(7))
        shards = shard_grid(runs, 3)
        assert shards == [(0, 3, 6), (1, 4), (2, 5)]

    def test_never_creates_empty_shards(self):
        shards = shard_grid(tuple(range(2)), 5)
        assert len(shards) == 2
        assert all(shards)

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            shard_grid(tuple(range(3)), 0)


class TestExecuteRun:
    def test_is_deterministic(self):
        run = tiny_spec().expand()[0]
        first, second = execute_run(run), execute_run(run)
        assert first.r_payload == second.r_payload
        assert first.m_payload == second.m_payload

    def test_m_test_none_skips_segmentation(self):
        record = execute_run(tiny_spec(m_test="none").expand()[0])
        assert record.m_payload is None
        assert record.m_report() is None

    def test_m_test_violations_segments_only_violating_samples(self):
        record = execute_run(tiny_spec(m_test="violations").expand()[0])
        violating = {
            sample["index"]
            for sample in record.r_payload["samples"]
            if sample["verdict"] != "pass"
        }
        segmented = {segment["sample_index"] for segment in record.m_payload["segments"]}
        assert segmented == violating

    def test_m_test_all_segments_every_sample(self):
        record = execute_run(tiny_spec(m_test="all").expand()[0])
        assert len(record.m_payload["segments"]) == len(record.r_payload["samples"])

    def test_extended_model_schedule_clears_the_power_on_self_test(self):
        """Stimuli must not land inside the extended model's 500 ms self test,
        which ignores them and would turn into artifact MAX verdicts."""
        spec = CampaignSpec(
            name="ext",
            schemes=(SchemePoint(2, sut_seed=5),),
            cases=(CasePoint("bolus-request", samples=2, seed=1),),
            model="extended",
            m_test="none",
        )
        run = spec.expand()[0]
        assert run.test_case().stimuli[0].at_us > 500_000
        record = execute_run(run)
        assert record.passed  # scheme 2 conforms on the extended model too


class TestRunnerDeterminism:
    @pytest.mark.slow
    def test_parallel_aggregate_is_byte_identical_to_serial(self):
        spec = tiny_spec()
        serial = CampaignRunner(spec, workers=1).run()
        parallel = CampaignRunner(spec, workers=2).run()
        assert serial.to_json() == parallel.to_json()
        assert parallel.workers == 2

    def test_records_come_back_in_grid_order(self):
        result = CampaignRunner(tiny_spec(), workers=1).run()
        assert [record.spec.index for record in result.records] == [0, 1]

    def test_run_campaign_wrapper(self):
        result = run_campaign(tiny_spec(m_test="none"))
        assert len(result) == 2
        assert result.wall_seconds > 0

    def test_rejects_negative_worker_count(self):
        with pytest.raises(ValueError):
            CampaignRunner(tiny_spec(), workers=-1)

    def test_workers_zero_auto_detects_schedulable_cpus(self):
        runner = CampaignRunner(tiny_spec(), workers=0)
        assert runner.workers == default_worker_count()

    def test_default_worker_count_uses_affinity_not_cpu_count(self):
        count = default_worker_count()
        assert count >= 1
        if hasattr(os, "sched_getaffinity"):
            # The schedulable count is what a CPU-limited container exposes;
            # cpu_count would report the host's physical CPUs instead.
            assert count == len(os.sched_getaffinity(0))
            assert count <= (os.cpu_count() or count)

    def test_workers_reports_actual_parallelism_not_request(self):
        single_run = CampaignSpec(
            name="one",
            schemes=(SchemePoint(2, sut_seed=22),),
            cases=(CasePoint("bolus-request", samples=1, seed=7),),
            m_test="none",
        )
        # One run short-circuits to the serial path regardless of the request.
        assert CampaignRunner(single_run, workers=8).run().workers == 1


class TestResultAccessors:
    def test_record_lookup_by_coordinates(self):
        result = run_campaign(tiny_spec(m_test="none"))
        record = result.record_for(scheme=2)
        assert record.spec.scheme == 2
        with pytest.raises(LookupError):
            result.record_for(scheme=3)

    def test_summary_and_csv_cover_every_run(self):
        result = run_campaign(tiny_spec(m_test="none"))
        rows = result.summary_rows()
        assert len(rows) == 2
        csv_text = result.to_csv()
        assert csv_text.count("\n") == 3  # header + 2 rows
        assert "scheme1/bolus-request" in result.render_summary()

    def test_reports_reconstruct_from_payloads(self):
        result = run_campaign(tiny_spec(m_test="all"))
        record = result.record_for(scheme=1)
        r_report = record.r_report()
        assert len(r_report.samples) == 2
        assert r_report.test_case.requirement.requirement_id == "REQ1"
        m_report = record.m_report()
        assert len(m_report.segments) == 2
