"""Grid expansion and seed derivation of campaign specs."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignSpec,
    CasePoint,
    SchemePoint,
    build_case,
    derive_seed,
    full_grid_spec,
    interference_sweep_spec,
    period_sweep_spec,
    preset_spec,
    table_one_spec,
)


def small_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="unit",
        schemes=(SchemePoint(1), SchemePoint(2)),
        cases=(CasePoint("bolus-request", samples=3), CasePoint("alarm-clear", samples=2)),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestExpansion:
    def test_cartesian_size_and_contiguous_indices(self):
        runs = small_spec().expand()
        assert len(runs) == 4
        assert [run.index for run in runs] == [0, 1, 2, 3]

    def test_product_order_is_schemes_outer_cases_inner(self):
        runs = small_spec().expand()
        assert [(run.scheme, run.case) for run in runs] == [
            (1, "bolus-request"),
            (1, "alarm-clear"),
            (2, "bolus-request"),
            (2, "alarm-clear"),
        ]

    def test_scheme_overrides_propagate(self):
        spec = CampaignSpec(
            name="unit",
            schemes=(SchemePoint(1, period_us=10_000), SchemePoint(3, interference_scale=0.5)),
            cases=(CasePoint("bolus-request", samples=1),),
        )
        first, second = spec.expand()
        assert first.period_us == 10_000 and first.interference_scale is None
        assert second.interference_scale == 0.5 and second.period_us is None

    def test_expansion_is_deterministic(self):
        assert small_spec().expand() == small_spec().expand()

    def test_run_spec_regenerates_identical_schedules(self):
        run = small_spec().expand()[0]
        first, second = run.test_case(), run.test_case()
        assert first.stimuli == second.stimuli
        assert first.requirement.requirement_id == second.requirement.requirement_id


class TestSeeds:
    def test_derive_seed_is_stable_and_coordinate_dependent(self):
        assert derive_seed(0, "sut", 1) == derive_seed(0, "sut", 1)
        assert derive_seed(0, "sut", 1) != derive_seed(0, "sut", 2)
        assert derive_seed(0, "sut", 1) != derive_seed(1, "sut", 1)

    def test_adding_a_scheme_point_does_not_reshuffle_existing_seeds(self):
        base = small_spec().expand()
        widened = small_spec(
            schemes=(SchemePoint(1), SchemePoint(2), SchemePoint(3))
        ).expand()
        by_coords = {(run.scheme, run.case): run for run in widened}
        for run in base:
            twin = by_coords[(run.scheme, run.case)]
            assert twin.sut_seed == run.sut_seed
            assert twin.case_seed == run.case_seed

    def test_explicit_seeds_are_respected(self):
        runs = table_one_spec().expand()
        assert [run.sut_seed for run in runs] == [11, 22, 33]
        assert all(run.case_seed == 7 for run in runs)


class TestValidation:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown implementation scheme"):
            SchemePoint(4)

    def test_rejects_period_on_non_scheme1(self):
        with pytest.raises(ValueError, match="period_us"):
            SchemePoint(2, period_us=10_000)

    def test_rejects_interference_on_non_scheme3(self):
        with pytest.raises(ValueError, match="interference_scale"):
            SchemePoint(1, interference_scale=1.0)

    def test_rejects_unknown_case(self):
        with pytest.raises(ValueError, match="unknown campaign scenario"):
            CasePoint("no-such-scenario")

    def test_rejects_unknown_m_test_policy(self):
        with pytest.raises(ValueError, match="m_test"):
            small_spec(m_test="sometimes")

    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="scheme"):
            small_spec(schemes=())
        with pytest.raises(ValueError, match="scenario"):
            small_spec(cases=())

    def test_build_case_rejects_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown campaign scenario"):
            build_case("nope", 1, 0)


class TestPresets:
    def test_table_one_grid_shape(self):
        spec = table_one_spec()
        assert spec.size == 3
        assert {run.scheme for run in spec.expand()} == {1, 2, 3}

    def test_period_sweep_covers_requested_periods(self):
        spec = period_sweep_spec(periods_ms=(10, 50), samples=2)
        assert [run.period_us for run in spec.expand()] == [10_000, 50_000]

    def test_interference_sweep_covers_requested_scales(self):
        spec = interference_sweep_spec(scales=(0.0, 1.0), samples=2)
        assert [run.interference_scale for run in spec.expand()] == [0.0, 1.0]

    def test_full_grid_is_schemes_times_scenarios(self):
        assert full_grid_spec().size == 12

    def test_preset_spec_defaults_and_overrides(self):
        assert preset_spec("table1").expand()[0].samples == 10
        assert preset_spec("table1", samples=4).expand()[0].samples == 4
        with pytest.raises(ValueError, match="unknown campaign grid"):
            preset_spec("no-such-grid")
