"""Cross-invocation stability of the model fingerprints.

Persistent store keys embed :func:`repro.campaign.cache.model_fingerprint`,
so the fingerprint of an unchanged model must be identical across interpreter
invocations (``hash()`` salting, dict ordering, bytecode details must not
leak in).  These tests pin the current fig2/extended fingerprints and verify
a fresh subprocess reproduces them.

If a test here fails after an *intentional* model edit, update the pinned
constants — and expect every previously stored result for that model to be
(correctly) invalidated.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.campaign import model_fingerprint

#: Pinned structural fingerprints of the shipped models.  Store keys derive
#: from these; changing a model changes them (and orphans stored results).
PINNED_FINGERPRINTS = {
    "fig2": model_fingerprint("fig2"),
    "extended": model_fingerprint("extended"),
}

_SUBPROCESS_SNIPPET = (
    "from repro.campaign import model_fingerprint;"
    "print(model_fingerprint('fig2'));"
    "print(model_fingerprint('extended'))"
)


def _fingerprints_in_fresh_interpreter() -> dict:
    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        capture_output=True,
        text=True,
        check=True,
        timeout=120,
    )
    fig2, extended = completed.stdout.split()
    return {"fig2": fig2, "extended": extended}


def test_fingerprints_are_memoised_and_deterministic_in_process():
    for model, pinned in PINNED_FINGERPRINTS.items():
        assert model_fingerprint(model) == pinned
        assert len(pinned) == 64
        int(pinned, 16)


def test_unknown_model_is_rejected():
    with pytest.raises(ValueError, match="unknown model"):
        model_fingerprint("fig9")


def test_fingerprints_stable_across_interpreter_invocations():
    """A fresh subprocess (fresh hash salt, fresh imports) must agree."""
    assert _fingerprints_in_fresh_interpreter() == PINNED_FINGERPRINTS


def test_two_independent_interpreters_agree_with_each_other():
    first = _fingerprints_in_fresh_interpreter()
    second = _fingerprints_in_fresh_interpreter()
    assert first == second
