"""Canonical-payload round trips and the stable CSV schema."""

from __future__ import annotations

import json

from repro.campaign import (
    SUMMARY_FIELDS,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    CasePoint,
    RunSpec,
    SchemePoint,
    scenario_grid_spec,
    table_one_spec,
)


def test_empty_campaign_csv_still_has_the_full_header():
    result = CampaignResult(spec=table_one_spec(samples=2), records=[])
    csv_text = result.to_csv()
    assert csv_text.strip() == ",".join(SUMMARY_FIELDS)


def test_summary_rows_match_the_declared_schema():
    result = CampaignRunner(table_one_spec(samples=2)).run()
    for row in result.summary_rows():
        assert tuple(row.keys()) == SUMMARY_FIELDS
    header = result.to_csv().splitlines()[0]
    assert header == ",".join(SUMMARY_FIELDS)


def test_campaign_result_json_round_trip_is_byte_identical():
    """to_dict → rebuild → re-serialize must round-trip bit for bit."""
    result = CampaignRunner(table_one_spec(samples=2)).run()
    rebuilt = CampaignResult.from_dict(json.loads(result.to_json()))
    assert rebuilt.to_json() == result.to_json()
    assert rebuilt.to_csv() == result.to_csv()


def test_program_backed_campaign_round_trips():
    """Scenario-DSL programs survive the dict round trip inside specs."""
    result = CampaignRunner(scenario_grid_spec(count=1, samples=2)).run()
    rebuilt = CampaignResult.from_json(result.to_json())
    assert rebuilt.to_json() == result.to_json()
    assert rebuilt.records[0].spec.program is not None


def test_campaign_spec_round_trip():
    spec = CampaignSpec(
        name="mixed",
        schemes=(SchemePoint(1, period_us=20000), SchemePoint(3, interference_scale=0.5)),
        cases=(CasePoint("bolus-request", samples=3, seed=9),),
        base_seed=4,
        m_test="violations",
    )
    rebuilt = CampaignSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.to_dict() == spec.to_dict()


def test_run_spec_round_trip_preserves_every_field():
    for spec in table_one_spec(samples=2).expand():
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()
