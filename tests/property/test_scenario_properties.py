"""Property-based tests of scenario-program compilation invariants.

Whatever point of the scenario space the sampler lands on, and whatever seed
a program is compiled with, the resulting schedule must be a well-formed
R-test case: non-negative monotone timestamps, the declared stimulus volume,
and measured stimuli never closer than the requirement's minimum separation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpca import gpca_scenario_space
from repro.scenarios import ScenarioSampler

SPACE = gpca_scenario_space()

seeds = st.integers(min_value=0, max_value=2**31 - 1)
indices = st.integers(min_value=0, max_value=20)


def nth_program(sampler_seed, index):
    sampler = ScenarioSampler(SPACE, seed=sampler_seed)
    for _ in range(index):
        sampler.sample()
    return sampler.sample()


@settings(max_examples=40, deadline=None)
@given(seeds, indices, seeds)
def test_compiled_schedules_are_monotone_and_non_negative(sampler_seed, index, compile_seed):
    case = nth_program(sampler_seed, index).compile(compile_seed)
    times = case.stimulus_times()
    assert all(t >= 0 for t in times)
    assert times == sorted(times)


@settings(max_examples=40, deadline=None)
@given(seeds, indices, seeds)
def test_measured_stimuli_respect_minimum_separation(sampler_seed, index, compile_seed):
    program = nth_program(sampler_seed, index)
    case = program.compile(compile_seed)
    variable = program.requirement.stimulus.variable
    measured = [s.at_us for s in case.stimuli if s.variable == variable]
    minimum = program.requirement.min_stimulus_separation_us
    assert len(measured) == program.samples * program.stimulus.burst
    assert all(b - a >= minimum for a, b in zip(measured, measured[1:]))


@settings(max_examples=40, deadline=None)
@given(seeds, indices, seeds)
def test_compilation_is_a_pure_function_of_program_and_seed(sampler_seed, index, compile_seed):
    program = nth_program(sampler_seed, index)
    assert program.compile(compile_seed) == program.compile(compile_seed)
    # And the program itself is a pure function of (space, seed, index).
    assert nth_program(sampler_seed, index) == program


@settings(max_examples=40, deadline=None)
@given(seeds, indices)
def test_stimulus_volume_matches_program_shape(sampler_seed, index):
    program = nth_program(sampler_seed, index)
    case = program.compile()
    assert case.sample_count == program.samples * program.stimuli_per_cycle


@settings(max_examples=40, deadline=None)
@given(seeds, indices, seeds)
def test_round_trip_through_dict_preserves_compilation(sampler_seed, index, compile_seed):
    from repro.scenarios import ScenarioProgram

    program = nth_program(sampler_seed, index)
    restored = ScenarioProgram.from_dict(program.to_dict())
    assert restored.compile(compile_seed) == program.compile(compile_seed)
