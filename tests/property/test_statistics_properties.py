"""Property-based tests of the statistics helpers and sufficiency metrics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.statistics import Summary, percentile, violation_rate
from repro.core.coverage import samples_needed_for_rate, wilson_interval

values = st.lists(st.integers(min_value=0, max_value=10_000_000), min_size=1, max_size=100)


@given(values)
def test_summary_bounds(samples):
    summary = Summary.of(samples)
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.minimum <= summary.mean <= summary.maximum
    assert summary.minimum <= summary.p95 <= summary.maximum
    assert summary.stdev >= 0
    assert summary.count == len(samples)


@given(values, st.floats(min_value=0, max_value=100))
def test_percentile_within_range(samples, pct):
    value = percentile(samples, pct)
    assert min(samples) <= value <= max(samples)


@given(values)
def test_percentile_extremes(samples):
    assert percentile(samples, 0) == min(samples)
    assert percentile(samples, 100) == max(samples)


@given(
    st.lists(st.one_of(st.none(), st.integers(min_value=0, max_value=1_000_000)), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=1_000_000),
)
def test_violation_rate_bounds(latencies, deadline):
    rate = violation_rate(latencies, deadline)
    assert 0.0 <= rate <= 1.0
    if all(latency is None for latency in latencies):
        assert rate == 1.0


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=100))
def test_wilson_interval_is_a_valid_interval(successes, extra):
    samples = successes + extra
    low, high = wilson_interval(successes, samples)
    assert 0.0 <= low <= high <= 1.0
    # The observed proportion always lies inside the interval.
    assert low <= successes / samples <= high


@given(st.floats(min_value=0.001, max_value=0.5), st.floats(min_value=0.5, max_value=0.999))
def test_samples_needed_monotone_in_target(rate, confidence):
    tighter = samples_needed_for_rate(rate / 2, confidence)
    looser = samples_needed_for_rate(rate, confidence)
    assert tighter >= looser >= 1
