"""Property-based equivalence between the model executor and CODE(M).

The model-based implementation's premise is that the generated code preserves
the model's functional behaviour; these properties drive both executors with
random event/advance scenarios and require identical outputs and states.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import generate_code
from repro.gpca import build_extended_statechart, build_fig2_statechart
from repro.model.simulation import ModelExecutor

FIG2_CHART = build_fig2_statechart()
FIG2_ARTIFACTS = generate_code(FIG2_CHART)
EXTENDED_CHART = build_extended_statechart()
EXTENDED_ARTIFACTS = generate_code(EXTENDED_CHART)

FIG2_EVENTS = [event.name for event in FIG2_CHART.input_events]
EXTENDED_EVENTS = [event.name for event in EXTENDED_CHART.input_events]


def scenario_strategy(event_names):
    """A scenario is a list of steps: (advance_ticks, optional event)."""
    step = st.tuples(
        st.integers(min_value=0, max_value=5000),
        st.one_of(st.none(), st.sampled_from(event_names)),
    )
    return st.lists(step, min_size=1, max_size=25)


def run_both(chart, artifacts, scenario):
    model = ModelExecutor(chart)
    code = artifacts.new_instance()
    for advance_ticks, event in scenario:
        if advance_ticks:
            model.advance(advance_ticks)
            code.advance_clock(advance_ticks)
            code.scan()
        if event is not None:
            model.inject(event)
            code.set_input(event)
            code.scan()
    return model, code


@given(scenario_strategy(FIG2_EVENTS))
@settings(max_examples=80, deadline=None)
def test_fig2_outputs_match_model_on_random_scenarios(scenario):
    model, code = run_both(FIG2_CHART, FIG2_ARTIFACTS, scenario)
    assert code.outputs == model.outputs
    assert code.state_name == model.current_state


@given(scenario_strategy(EXTENDED_EVENTS))
@settings(max_examples=60, deadline=None)
def test_extended_outputs_match_model_on_random_scenarios(scenario):
    model, code = run_both(EXTENDED_CHART, EXTENDED_ARTIFACTS, scenario)
    assert code.outputs == model.outputs
    assert code.state_name == model.current_state


@given(scenario_strategy(FIG2_EVENTS))
@settings(max_examples=40, deadline=None)
def test_transition_sequences_match_model(scenario):
    model, code = run_both(FIG2_CHART, FIG2_ARTIFACTS, scenario)
    model_path = [firing.transition for firing in model.firings]
    code_path = [firing.transition.name for firing in code.firing_history]
    assert model_path == code_path


@given(scenario_strategy(FIG2_EVENTS))
@settings(max_examples=40, deadline=None)
def test_motor_never_runs_outside_infusion_state(scenario):
    """A safety invariant of the pump model, checked on the generated code."""
    model, code = run_both(FIG2_CHART, FIG2_ARTIFACTS, scenario)
    if code.output("o-MotorState"):
        assert code.state_name == "Infusion"
    else:
        assert code.state_name != "Infusion"
