"""Property-based tests of traces, matching and delay decomposition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delays import DelaySegments
from repro.core.four_variables import Event, EventKind, Trace
from repro.core.oracle import ResponseMatcher
from repro.core.requirements import EventSpec


# ----------------------------------------------------------------------
# Trace invariants
# ----------------------------------------------------------------------
timestamps = st.lists(st.integers(min_value=0, max_value=10_000_000), min_size=0, max_size=50)


@given(timestamps)
def test_trace_preserves_sorted_insertion_order(times):
    ordered = sorted(times)
    trace = Trace(Event(EventKind.M, "m-X", True, t) for t in ordered)
    assert [event.timestamp_us for event in trace] == ordered


@given(timestamps, st.integers(min_value=0, max_value=10_000_000))
def test_select_after_never_returns_earlier_events(times, cutoff):
    trace = Trace(Event(EventKind.M, "m-X", True, t) for t in sorted(times))
    selected = trace.select(after_us=cutoff)
    assert all(event.timestamp_us >= cutoff for event in selected)


@given(timestamps)
def test_restricted_to_is_subset(times):
    trace = Trace(Event(EventKind.M, "m-X", True, t) for t in sorted(times))
    restricted = trace.restricted_to([EventKind.C])
    assert len(restricted) == 0
    restricted_m = trace.restricted_to([EventKind.M])
    assert len(restricted_m) == len(trace)


# ----------------------------------------------------------------------
# Indexed queries vs a reference linear scan
# ----------------------------------------------------------------------
def _linear_select(events, kind=None, variable=None, predicate=None, after_us=None, before_us=None):
    """The seed's O(n) select semantics, used as the oracle for the indexes."""
    selected = []
    for event in events:
        if not event.matches(kind, variable):
            continue
        if after_us is not None and event.timestamp_us < after_us:
            continue
        if before_us is not None and event.timestamp_us > before_us:
            continue
        if predicate is not None and not predicate(event):
            continue
        selected.append(event)
    return selected


_KINDS = [EventKind.M, EventKind.I, EventKind.O, EventKind.C, EventKind.TRANSITION_START]
_VARIABLES = ["m-X", "m-Y", "c-X", "t_0"]


@st.composite
def random_traces(draw):
    count = draw(st.integers(min_value=0, max_value=60))
    times = sorted(draw(st.lists(st.integers(0, 5_000), min_size=count, max_size=count)))
    events = [
        Event(
            draw(st.sampled_from(_KINDS)),
            draw(st.sampled_from(_VARIABLES)),
            draw(st.integers(0, 3)),
            time,
        )
        for time in times
    ]
    return events


@given(
    random_traces(),
    st.sampled_from(_KINDS + [None]),
    st.sampled_from(_VARIABLES + [None]),
    st.one_of(st.none(), st.integers(0, 5_000)),
    st.one_of(st.none(), st.integers(0, 5_000)),
)
@settings(max_examples=120)
def test_indexed_queries_equal_linear_scan(events, kind, variable, after_us, before_us):
    """The indexed trace answers every query shape byte-identically to the
    seed linear scan, including timestamp ties and empty windows."""
    trace = Trace(events)
    predicate = lambda event: bool(event.value)  # noqa: E731

    for pred in (None, predicate):
        expected = _linear_select(events, kind, variable, pred, after_us, before_us)
        assert trace.select(kind, variable, pred, after_us, before_us) == expected
        first = trace.first(kind, variable, pred, after_us, before_us=before_us)
        assert first == (expected[0] if expected else None)

    wanted = (EventKind.M, EventKind.C)
    expected_kinds = [
        event
        for event in events
        if event.kind in wanted
        and (after_us is None or event.timestamp_us >= after_us)
        and (before_us is None or event.timestamp_us <= before_us)
    ]
    assert trace.select_kinds(wanted, after_us, before_us) == expected_kinds
    assert list(trace.restricted_to(wanted)) == [event for event in events if event.kind in wanted]


@given(random_traces(), random_traces())
@settings(max_examples=60)
def test_lazy_index_handles_appends_between_queries(first_batch, second_batch):
    """Appending after a query indexes only the new tail — results still match
    a linear scan over the combined event sequence."""
    trace = Trace(first_batch)
    assert trace.select(kind=EventKind.M) == _linear_select(first_batch, kind=EventKind.M)
    offset = trace[len(trace) - 1].timestamp_us if len(trace) else 0
    shifted = [
        Event(event.kind, event.variable, event.value, event.timestamp_us + offset)
        for event in second_batch
    ]
    trace.extend(shifted)
    combined = list(first_batch) + shifted
    assert trace.select(kind=EventKind.M) == _linear_select(combined, kind=EventKind.M)
    assert list(trace.events) == combined


# ----------------------------------------------------------------------
# Matching invariants
# ----------------------------------------------------------------------
@st.composite
def stimulus_response_schedules(draw):
    """Random stimulus times and (optional) response latencies."""
    count = draw(st.integers(min_value=1, max_value=10))
    gaps = draw(st.lists(st.integers(min_value=1_000, max_value=500_000), min_size=count, max_size=count))
    stimulus_times = []
    current = 0
    for gap in gaps:
        current += gap
        stimulus_times.append(current)
    latencies = draw(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=1, max_value=400_000)),
            min_size=count,
            max_size=count,
        )
    )
    return stimulus_times, latencies


@given(stimulus_response_schedules())
@settings(max_examples=60)
def test_matcher_pairs_are_causal_and_ordered(schedule):
    stimulus_times, latencies = schedule
    events = []
    for stimulus_time, latency in zip(stimulus_times, latencies):
        events.append(Event(EventKind.M, "m-X", True, stimulus_time))
        if latency is not None:
            events.append(Event(EventKind.C, "c-X", 1, stimulus_time + latency))
    trace = Trace(sorted(events, key=lambda event: event.timestamp_us))
    matcher = ResponseMatcher(EventSpec.becomes("m-X", True), EventSpec.becomes_positive("c-X"))
    pairs = matcher.match(trace)

    assert len(pairs) == len(stimulus_times)
    previous_response = -1
    for pair in pairs:
        if pair.response is None:
            continue
        # Causality: the response never precedes its stimulus.
        assert pair.response.timestamp_us >= pair.stimulus.timestamp_us
        # FIFO: responses are consumed in non-decreasing time order.
        assert pair.response.timestamp_us >= previous_response
        previous_response = pair.response.timestamp_us


@given(stimulus_response_schedules(), st.integers(min_value=1_000, max_value=300_000))
@settings(max_examples=60)
def test_matcher_timeout_bounds_latency(schedule, timeout_us):
    stimulus_times, latencies = schedule
    events = []
    for stimulus_time, latency in zip(stimulus_times, latencies):
        events.append(Event(EventKind.M, "m-X", True, stimulus_time))
        if latency is not None:
            events.append(Event(EventKind.C, "c-X", 1, stimulus_time + latency))
    trace = Trace(sorted(events, key=lambda event: event.timestamp_us))
    matcher = ResponseMatcher(EventSpec.becomes("m-X", True), EventSpec.becomes_positive("c-X"))
    for pair in matcher.match(trace, timeout_us=timeout_us):
        if pair.latency_us is not None:
            assert pair.latency_us <= timeout_us


# ----------------------------------------------------------------------
# Delay decomposition invariants
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=0, max_value=200_000),
    st.integers(min_value=0, max_value=200_000),
    st.integers(min_value=0, max_value=200_000),
)
def test_complete_segments_always_sum_to_end_to_end(m_time, input_delay, code_delay, output_delay):
    segments = DelaySegments(
        sample_index=0,
        m_time_us=m_time,
        i_time_us=m_time + input_delay,
        o_time_us=m_time + input_delay + code_delay,
        c_time_us=m_time + input_delay + code_delay + output_delay,
    )
    assert segments.complete
    assert segments.segments_consistent()
    assert segments.end_to_end_us == input_delay + code_delay + output_delay
    assert segments.dominant_segment() in {"input", "code", "output"}
