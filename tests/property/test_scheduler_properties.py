"""Property-based tests of the RTOS scheduler's accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.kernel.simulator import Simulator
from repro.platform.kernel.time import ms
from repro.platform.rtos.directives import Compute
from repro.platform.rtos.scheduler import RTOSScheduler


@st.composite
def task_sets(draw):
    """Random small periodic task sets (period, execution, priority)."""
    count = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for index in range(count):
        period_ms = draw(st.integers(min_value=5, max_value=50))
        execution_ms = draw(st.integers(min_value=1, max_value=period_ms))
        priority = draw(st.integers(min_value=1, max_value=5))
        tasks.append((f"task{index}", period_ms, execution_ms, priority))
    return tasks


@given(task_sets())
@settings(max_examples=40, deadline=None)
def test_cpu_time_never_exceeds_wall_clock(task_set):
    simulator = Simulator()
    rtos = RTOSScheduler(simulator)
    for name, period_ms, execution_ms, priority in task_set:
        def make_job(duration=ms(execution_ms)):
            def job():
                yield Compute(duration)
            return job
        rtos.create_task(name, priority=priority, job_factory=make_job(), period_us=ms(period_ms))
    rtos.start()
    horizon = ms(500)
    simulator.run_until(horizon)
    busy = sum(task.stats.cpu_time_us for task in rtos.tasks)
    assert busy <= horizon
    assert 0.0 <= rtos.cpu_utilization() <= 1.0


@given(task_sets())
@settings(max_examples=40, deadline=None)
def test_completions_never_exceed_activations(task_set):
    simulator = Simulator()
    rtos = RTOSScheduler(simulator)
    for name, period_ms, execution_ms, priority in task_set:
        def make_job(duration=ms(execution_ms)):
            def job():
                yield Compute(duration)
            return job
        rtos.create_task(name, priority=priority, job_factory=make_job(), period_us=ms(period_ms))
    rtos.start()
    simulator.run_until(ms(300))
    for task in rtos.tasks:
        assert task.stats.completions <= task.stats.activations
        assert all(response >= 0 for response in task.stats.response_times_us)


@given(task_sets())
@settings(max_examples=30, deadline=None)
def test_highest_priority_task_is_never_preempted(task_set):
    simulator = Simulator()
    rtos = RTOSScheduler(simulator)
    top_priority = max(priority for _, _, _, priority in task_set)
    for name, period_ms, execution_ms, priority in task_set:
        def make_job(duration=ms(execution_ms)):
            def job():
                yield Compute(duration)
            return job
        rtos.create_task(name, priority=priority, job_factory=make_job(), period_us=ms(period_ms))
    rtos.start()
    simulator.run_until(ms(300))
    strictly_top = [
        task for task in rtos.tasks
        if task.priority == top_priority
        and sum(1 for other in rtos.tasks if other.priority == top_priority) == 1
    ]
    for task in strictly_top:
        assert task.stats.preemptions == 0
