"""Unit tests for state coverage (complements transition coverage)."""

import pytest

from repro.core.coverage import StateCoverage
from repro.core.four_variables import Event, EventKind, Trace


class TestStateCoverage:
    def test_covers_source_and_target_of_observed_transitions(self, fig2_artifacts):
        coverage = StateCoverage.for_code_model(fig2_artifacts.code_model)
        trace = Trace(
            [
                Event(EventKind.TRANSITION_START, "t_bolus_req", None, 10),
                Event(EventKind.TRANSITION_START, "t_start_infusion", None, 20),
            ]
        )
        coverage.add_trace(trace)
        assert coverage.covered == {"Idle", "BolusRequested", "Infusion"}
        assert coverage.uncovered == ["EmptyAlarm"]
        assert coverage.ratio == pytest.approx(3 / 4)

    def test_unknown_transitions_ignored(self, fig2_artifacts):
        coverage = StateCoverage.for_code_model(fig2_artifacts.code_model)
        trace = Trace([Event(EventKind.TRANSITION_START, "not_a_transition", None, 10)])
        coverage.add_trace(trace)
        assert coverage.covered == set()

    def test_full_coverage_summary(self, fig2_artifacts):
        coverage = StateCoverage.for_code_model(fig2_artifacts.code_model)
        trace = Trace(
            [
                Event(EventKind.TRANSITION_START, "t_bolus_req", None, 1),
                Event(EventKind.TRANSITION_START, "t_start_infusion", None, 2),
                Event(EventKind.TRANSITION_START, "t_empty_alarm", None, 3),
            ]
        )
        coverage.add_trace(trace)
        assert coverage.ratio == 1.0
        assert "uncovered: none" in coverage.summary()

    def test_coverage_of_a_real_run(self, fig2_artifacts):
        from repro.core import RTestRunner
        from repro.gpca import bolus_request_test_case, scheme_factory

        report = RTestRunner(scheme_factory(2, seed=3)).run(
            bolus_request_test_case(samples=2, seed=2)
        )
        coverage = StateCoverage.for_code_model(fig2_artifacts.code_model)
        coverage.add_trace(report.trace)
        # The bolus scenario never reaches the EmptyAlarm state.
        assert {"Idle", "BolusRequested", "Infusion"} <= coverage.covered
        assert "EmptyAlarm" in coverage.uncovered
