"""Unit tests for stimulus/response matching."""

import pytest

from repro.core.four_variables import Event, EventKind, Trace
from repro.core.oracle import ResponseMatcher
from repro.core.requirements import EventSpec
from repro.platform.kernel.time import ms


def make_trace(pairs):
    """Build a trace from (kind, variable, value, time_ms) tuples."""
    return Trace(
        Event(kind, variable, value, ms(time_ms))
        for kind, variable, value, time_ms in sorted(pairs, key=lambda item: item[3])
    )


@pytest.fixture
def matcher():
    return ResponseMatcher(
        EventSpec.becomes("m-Req", True),
        EventSpec.becomes_positive("c-Motor"),
    )


class TestMatching:
    def test_single_pair(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.C, "c-Motor", 1, 60),
        ])
        pairs = matcher.match(trace)
        assert len(pairs) == 1
        assert pairs[0].latency_us == ms(50)

    def test_fifo_pairing(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.M, "m-Req", True, 200),
            (EventKind.C, "c-Motor", 1, 100),
            (EventKind.C, "c-Motor", 2, 280),
        ])
        pairs = matcher.match(trace)
        assert [pair.latency_us for pair in pairs] == [ms(90), ms(80)]

    def test_missing_response_is_none(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
        ])
        pairs = matcher.match(trace)
        assert pairs[0].response is None
        assert pairs[0].latency_us is None

    def test_response_before_stimulus_not_matched(self, matcher):
        trace = make_trace([
            (EventKind.C, "c-Motor", 1, 5),
            (EventKind.M, "m-Req", True, 10),
        ])
        pairs = matcher.match(trace)
        assert pairs[0].response is None

    def test_timeout_excludes_late_response(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.C, "c-Motor", 1, 700),
        ])
        pairs = matcher.match(trace, timeout_us=ms(500))
        assert pairs[0].response is None

    def test_value_filter_applied(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.C, "c-Motor", 0, 30),   # motor stop, not a start
            (EventKind.C, "c-Motor", 2, 60),
        ])
        pairs = matcher.match(trace)
        assert pairs[0].response.value == 2

    def test_second_stimulus_without_response_is_max(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.C, "c-Motor", 1, 60),
            (EventKind.M, "m-Req", True, 300),
        ])
        pairs = matcher.match(trace, timeout_us=ms(500))
        assert pairs[0].response is not None
        assert pairs[1].response is None

    def test_late_response_stays_available_to_next_stimulus(self, matcher):
        """A response beyond ``timeout_us`` is not consumed by the stimulus it
        missed: that sample is reported unanswered, and the response remains
        available to pair with the next stimulus it is in time for."""
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.M, "m-Req", True, 600),
            (EventKind.C, "c-Motor", 1, 650),
        ])
        pairs = matcher.match(trace, timeout_us=ms(500))
        assert pairs[0].response is None          # 640 ms after stimulus 0: too late
        assert pairs[1].response is not None      # ... but only 50 ms after stimulus 1
        assert pairs[1].latency_us == ms(50)

    def test_response_exactly_at_timeout_is_accepted(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.C, "c-Motor", 1, 510),
        ])
        pairs = matcher.match(trace, timeout_us=ms(500))
        assert pairs[0].latency_us == ms(500)

    def test_only_matching_kind_considered(self, matcher):
        trace = make_trace([
            (EventKind.M, "m-Req", True, 10),
            (EventKind.O, "c-Motor", 1, 30),   # an O event on the same variable name
            (EventKind.C, "c-Motor", 1, 80),
        ])
        pairs = matcher.match(trace)
        assert pairs[0].response.timestamp_us == ms(80)


class TestFirstEventAfter:
    def test_window_and_spec(self):
        trace = make_trace([
            (EventKind.O, "o-Motor", 0, 10),
            (EventKind.O, "o-Motor", 1, 50),
            (EventKind.O, "o-Motor", 1, 90),
        ])
        event = ResponseMatcher.first_event_after(
            trace, EventKind.O, "o-Motor", ms(20),
            spec=EventSpec.becomes("o-Motor", 1),
        )
        assert event.timestamp_us == ms(50)
        bounded = ResponseMatcher.first_event_after(
            trace, EventKind.O, "o-Motor", ms(60), before_us=ms(80)
        )
        assert bounded is None
