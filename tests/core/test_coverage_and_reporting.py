"""Unit tests for coverage/sufficiency metrics, probes and report rendering."""

import pytest

from repro.core.coverage import (
    TransitionCoverage,
    assess_sufficiency,
    samples_needed_for_rate,
    wilson_interval,
)
from repro.core.four_variables import Event, EventKind, Trace, TraceRecorder
from repro.core.instrumentation import MeasurementProbes, ProbeConfiguration
from repro.core.r_testing import RSample, RTestReport, SampleVerdict
from repro.core.report import render_layered_summary, render_m_report, render_r_report
from repro.core.requirements import EventSpec, TimingRequirement
from repro.core.test_generation import RTestCase, Stimulus
from repro.platform.kernel.time import ms


def make_r_report(latencies_ms, deadline_ms=100):
    requirement = TimingRequirement(
        requirement_id="REQ-X",
        stimulus=EventSpec.becomes("m-Req", True),
        response=EventSpec.becomes_positive("c-Act"),
        deadline_us=ms(deadline_ms),
    )
    case = RTestCase(
        name="case",
        requirement=requirement,
        stimuli=tuple(Stimulus(ms(10 + 1000 * i), "m-Req") for i in range(len(latencies_ms))),
    )
    samples = []
    for index, latency in enumerate(latencies_ms):
        if latency is None:
            verdict = SampleVerdict.MAX
        elif latency <= deadline_ms:
            verdict = SampleVerdict.PASS
        else:
            verdict = SampleVerdict.FAIL
        samples.append(
            RSample(
                index=index,
                stimulus_time_us=ms(10 + 1000 * index),
                response_time_us=None if latency is None else ms(10 + 1000 * index + latency),
                latency_us=None if latency is None else ms(latency),
                verdict=verdict,
            )
        )
    return RTestReport(sut_name="sut", test_case=case, samples=samples)


class TestTransitionCoverage:
    def test_coverage_from_trace(self, fig2_artifacts):
        coverage = TransitionCoverage.for_code_model(fig2_artifacts.code_model)
        trace = Trace(
            [
                Event(EventKind.TRANSITION_START, "t_bolus_req", None, 10),
                Event(EventKind.TRANSITION_START, "t_start_infusion", None, 20),
            ]
        )
        coverage.add_trace(trace)
        assert coverage.ratio == pytest.approx(2 / 5)
        assert "t_bolus_done" in coverage.uncovered

    def test_coverage_from_fired_names(self, fig2_artifacts):
        coverage = TransitionCoverage.for_code_model(fig2_artifacts.code_model)
        coverage.add_fired(["t_bolus_req", "unknown_transition"])
        assert coverage.covered == {"t_bolus_req"}

    def test_full_coverage_summary(self, fig2_artifacts):
        coverage = TransitionCoverage.for_code_model(fig2_artifacts.code_model)
        coverage.add_fired(fig2_artifacts.code_model.transition_names)
        assert coverage.ratio == 1.0
        assert "uncovered: none" in coverage.summary()


class TestSufficiency:
    def test_wilson_interval_bounds(self):
        low, high = wilson_interval(0, 10)
        assert low == 0.0
        assert 0 < high < 0.35
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_assessment_clean_pass(self):
        assessment = assess_sufficiency(make_r_report([50] * 10))
        assert assessment.violations == 0
        assert assessment.conclusive

    def test_assessment_with_violation_is_conclusive(self):
        assessment = assess_sufficiency(make_r_report([50, 150, 60]))
        assert assessment.violations == 1
        assert assessment.conclusive

    def test_assessment_tiny_sample_not_conclusive(self):
        assessment = assess_sufficiency(make_r_report([50]))
        assert not assessment.conclusive

    def test_samples_needed_for_rate(self):
        assert samples_needed_for_rate(0.1, 0.95) == 30
        assert samples_needed_for_rate(0.01, 0.95) == 300
        with pytest.raises(ValueError):
            samples_needed_for_rate(0.0)
        with pytest.raises(ValueError):
            samples_needed_for_rate(0.5, confidence=1.5)


class TestProbes:
    def test_m_level_records_everything(self):
        recorder = TraceRecorder(lambda: 0)
        probes = MeasurementProbes(recorder, ProbeConfiguration.m_level())
        probes.input_read("i-X", True)
        probes.output_written("o-X", 1)
        probes.transition_started("t")
        probes.transition_finished("t")
        assert len(recorder.trace) == 4

    def test_r_level_drops_software_boundary_events(self):
        recorder = TraceRecorder(lambda: 0)
        probes = MeasurementProbes(recorder, ProbeConfiguration.r_level())
        probes.input_read("i-X", True)
        probes.output_written("o-X", 1)
        probes.transition_started("t")
        assert len(recorder.trace) == 0

    def test_default_is_m_level(self):
        recorder = TraceRecorder(lambda: 0)
        probes = MeasurementProbes(recorder)
        probes.input_read("i-X", True)
        assert len(recorder.trace) == 1


class TestReportRendering:
    def test_r_report_rendering_includes_all_samples(self):
        report = make_r_report([50, 150, None])
        text = render_r_report(report)
        assert "REQ-X" in text
        assert "MAX" in text
        assert text.count("\n") > 5

    def test_m_report_rendering(self, pump_interface):
        from repro.core.m_testing import MTestAnalyzer
        from repro.gpca import req1_bolus_start

        requirement = req1_bolus_start()
        trace = Trace(
            [
                Event(EventKind.M, "m-BolusReq", True, ms(10)),
                Event(EventKind.I, "i-BolusReq", True, ms(30)),
                Event(EventKind.TRANSITION_START, "t_bolus_req", None, ms(31)),
                Event(EventKind.TRANSITION_END, "t_bolus_req", None, ms(42)),
                Event(EventKind.O, "o-MotorState", 1, ms(60)),
                Event(EventKind.C, "c-PumpMotor", 1, ms(75)),
            ]
        )
        analyzer = MTestAnalyzer(pump_interface, requirement)
        report = analyzer.analyze(trace, sut_name="demo")
        text = render_m_report(report)
        assert "t_bolus_req" in text
        assert "dominant delay segment" in text

    def test_layered_summary_pass_path(self):
        report = make_r_report([50, 60])
        text = render_layered_summary(report, None)
        assert "M-testing is not required" in text

    def test_layered_summary_fail_without_m(self):
        report = make_r_report([150])
        text = render_layered_summary(report, None)
        assert "run M-testing" in text
