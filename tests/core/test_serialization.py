"""Unit tests for trace / report serialization."""

import json

import pytest

from repro.core.four_variables import Event, EventKind, Trace
from repro.core.m_testing import MTestAnalyzer
from repro.core.r_testing import RTestRunner, SampleVerdict
from repro.core.serialization import (
    m_report_to_dict,
    m_report_to_json,
    r_report_samples_from_dict,
    r_report_to_csv,
    r_report_to_dict,
    r_report_to_json,
    segments_from_dict,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.gpca import bolus_request_test_case, build_pump_interface, req1_bolus_start, scheme_factory
from repro.platform.kernel.time import ms


@pytest.fixture(scope="module")
def scheme1_reports():
    test_case = bolus_request_test_case(samples=3, seed=4)
    r_report = RTestRunner(scheme_factory(1, seed=11)).run(test_case)
    analyzer = MTestAnalyzer(build_pump_interface(), req1_bolus_start())
    m_report = analyzer.analyze(r_report.trace, sut_name=r_report.sut_name)
    return r_report, m_report


class TestTraceSerialization:
    def test_round_trip_preserves_events(self):
        trace = Trace(
            [
                Event(EventKind.M, "m-X", True, ms(1), {"device": "button"}),
                Event(EventKind.I, "i-X", True, ms(2)),
                Event(EventKind.TRANSITION_START, "t", None, ms(3)),
                Event(EventKind.C, "c-X", 2, ms(4)),
            ]
        )
        rebuilt = trace_from_json(trace_to_json(trace))
        assert len(rebuilt) == len(trace)
        for original, copy in zip(trace, rebuilt):
            assert copy.kind is original.kind
            assert copy.variable == original.variable
            assert copy.value == original.value
            assert copy.timestamp_us == original.timestamp_us
        assert rebuilt[0].meta["device"] == "button"

    def test_unknown_format_version_rejected(self):
        payload = trace_to_dict(Trace())
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            trace_from_dict(payload)

    def test_real_platform_trace_round_trips(self, scheme1_reports):
        r_report, _ = scheme1_reports
        rebuilt = trace_from_json(trace_to_json(r_report.trace))
        assert len(rebuilt) == len(r_report.trace)


class TestRReportSerialization:
    def test_dict_contains_verdicts_and_metadata(self, scheme1_reports):
        r_report, _ = scheme1_reports
        payload = r_report_to_dict(r_report)
        assert payload["requirement"]["id"] == "REQ1"
        assert payload["passed"] == r_report.passed
        assert len(payload["samples"]) == 3
        samples = r_report_samples_from_dict(payload)
        assert [sample.verdict for sample in samples] == [s.verdict for s in r_report.samples]

    def test_json_is_valid_and_optionally_embeds_trace(self, scheme1_reports):
        r_report, _ = scheme1_reports
        slim = json.loads(r_report_to_json(r_report))
        assert "trace" not in slim
        full = json.loads(r_report_to_json(r_report, include_trace=True))
        assert len(full["trace"]["events"]) == len(r_report.trace)

    def test_csv_has_one_row_per_sample(self, scheme1_reports):
        r_report, _ = scheme1_reports
        lines = r_report_to_csv(r_report).strip().splitlines()
        assert lines[0].startswith("sample,")
        assert len(lines) == 1 + len(r_report.samples)

    def test_verdict_values_round_trip(self):
        assert SampleVerdict("max") is SampleVerdict.MAX


class TestMReportSerialization:
    def test_dict_contains_segments(self, scheme1_reports):
        _, m_report = scheme1_reports
        payload = m_report_to_dict(m_report)
        assert payload["requirement"] == "REQ1"
        assert len(payload["segments"]) == len(m_report.segments)
        first = payload["segments"][0]
        assert first["end_to_end_us"] == m_report.segments[0].end_to_end_us

    def test_segments_round_trip(self, scheme1_reports):
        _, m_report = scheme1_reports
        payload = m_report_to_dict(m_report)
        rebuilt = segments_from_dict(payload)
        assert len(rebuilt) == len(m_report.segments)
        for original, copy in zip(m_report.segments, rebuilt):
            assert copy.input_delay_us == original.input_delay_us
            assert copy.code_delay_us == original.code_delay_us
            assert copy.output_delay_us == original.output_delay_us
            assert len(copy.transition_delays) == len(original.transition_delays)

    def test_json_serialises(self, scheme1_reports):
        _, m_report = scheme1_reports
        payload = json.loads(m_report_to_json(m_report, indent=2))
        assert payload["dominant_segment"] in {"input", "code", "output", None}
