"""Unit tests for timing requirements, event specs and R-test-case generation."""

import pytest

from repro.core.four_variables import Event, EventKind
from repro.core.requirements import EventSpec, RequirementSet, TimingRequirement
from repro.core.test_generation import (
    RTestGenerator,
    TestGenerationConfig,
    paper_example_test_case,
)
from repro.platform.kernel.time import ms


class TestEventSpec:
    def test_becomes(self):
        spec = EventSpec.becomes("c-X", 1)
        assert spec.matches(Event(EventKind.C, "c-X", 1, 0))
        assert not spec.matches(Event(EventKind.C, "c-X", 0, 0))
        assert not spec.matches(Event(EventKind.C, "c-Y", 1, 0))

    def test_becomes_positive(self):
        spec = EventSpec.becomes_positive("c-X")
        assert spec.matches(Event(EventKind.C, "c-X", 3, 0))
        assert not spec.matches(Event(EventKind.C, "c-X", 0, 0))
        assert spec.matches(Event(EventKind.C, "c-X", True, 0))

    def test_any_change(self):
        spec = EventSpec.any_change("c-X")
        assert spec.matches(Event(EventKind.C, "c-X", 0, 0))
        assert spec.matches(Event(EventKind.C, "c-X", 99, 0))


class TestTimingRequirement:
    def test_defaults_and_timeout(self, req1):
        assert req1.deadline_us == ms(100)
        assert req1.effective_timeout_us == ms(500)
        assert req1.has_model_counterpart

    def test_check_latency(self, req1):
        assert req1.check_latency(ms(100))
        assert not req1.check_latency(ms(101))
        assert not req1.check_latency(None)

    def test_model_counterpart_round_trip(self, req1):
        model_req = req1.to_model_requirement()
        assert model_req.trigger_event == "i-BolusReq"
        assert model_req.deadline_ticks == 100
        assert model_req.trigger_state == "Idle"

    def test_requirement_without_model_counterpart(self):
        requirement = TimingRequirement(
            requirement_id="X",
            stimulus=EventSpec.becomes("m-X", True),
            response=EventSpec.becomes("c-X", 1),
            deadline_us=ms(10),
        )
        assert not requirement.has_model_counterpart
        with pytest.raises(ValueError):
            requirement.to_model_requirement()

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            TimingRequirement(
                requirement_id="X",
                stimulus=EventSpec.becomes("m-X", True),
                response=EventSpec.becomes("c-X", 1),
                deadline_us=0,
            )

    def test_timeout_below_deadline_rejected(self):
        with pytest.raises(ValueError):
            TimingRequirement(
                requirement_id="X",
                stimulus=EventSpec.becomes("m-X", True),
                response=EventSpec.becomes("c-X", 1),
                deadline_us=ms(100),
                timeout_us=ms(50),
            )


class TestRequirementSet:
    def test_gpca_catalogue(self):
        from repro.gpca import gpca_requirements

        catalogue = gpca_requirements()
        assert len(catalogue) == 4
        assert "REQ1" in catalogue
        assert catalogue.get("REQ1").deadline_us == ms(100)
        assert len(catalogue.with_model_counterpart()) == 4

    def test_duplicate_id_rejected(self, req1):
        catalogue = RequirementSet("x", [req1])
        with pytest.raises(ValueError):
            catalogue.add(req1)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            RequirementSet("x").get("missing")


class TestTestGeneration:
    def test_uniform_spacing(self, req1):
        config = TestGenerationConfig(sample_count=5, start_offset_us=ms(10), min_separation_us=ms(4200))
        case = RTestGenerator(req1, config).uniform()
        times = case.stimulus_times()
        assert len(times) == 5
        assert times[0] == ms(10)
        assert all(b - a == ms(4200) for a, b in zip(times, times[1:]))

    def test_randomized_is_seeded(self, req1):
        config = TestGenerationConfig(sample_count=8, min_separation_us=ms(4200), max_separation_us=ms(6000), seed=3)
        a = RTestGenerator(req1, config).randomized()
        b = RTestGenerator(req1, config).randomized()
        assert a.stimulus_times() == b.stimulus_times()

    def test_randomized_respects_bounds(self, req1):
        config = TestGenerationConfig(sample_count=20, min_separation_us=ms(4200), max_separation_us=ms(5000), seed=1)
        times = RTestGenerator(req1, config).randomized().stimulus_times()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(ms(4200) <= gap <= ms(5000) for gap in gaps)

    def test_boundary_uses_requirement_minimum(self, req1):
        config = TestGenerationConfig(sample_count=3, min_separation_us=ms(4200))
        case = RTestGenerator(req1, config).boundary()
        times = case.stimulus_times()
        assert times[1] - times[0] == req1.min_stimulus_separation_us

    def test_generator_rejects_too_small_separation(self, req1):
        config = TestGenerationConfig(sample_count=3, min_separation_us=ms(100))
        with pytest.raises(ValueError):
            RTestGenerator(req1, config)

    def test_run_horizon_covers_timeout(self, req1):
        config = TestGenerationConfig(sample_count=2, min_separation_us=ms(4200))
        case = RTestGenerator(req1, config).uniform()
        assert case.run_horizon_us == case.last_stimulus_us + req1.effective_timeout_us

    def test_paper_example_sequence(self, req1):
        case = paper_example_test_case(req1)
        assert case.stimulus_times() == [ms(10), ms(300), ms(500)]
        assert all(stimulus.variable == "m-BolusReq" for stimulus in case.stimuli)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TestGenerationConfig(sample_count=0)
        with pytest.raises(ValueError):
            TestGenerationConfig(min_separation_us=ms(10), max_separation_us=ms(5))
