"""Unit tests for the four-variable interface, events, traces and recorder."""

import pytest

from repro.core.four_variables import (
    Event,
    EventKind,
    FourVariableInterface,
    Trace,
    TraceRecorder,
    VariableKind,
    VariableSpec,
)


class TestInterface:
    def test_declares_and_looks_up(self):
        interface = FourVariableInterface()
        interface.monitored("m-X")
        interface.input("i-X")
        assert interface.get("m-X").kind is VariableKind.MONITORED
        assert "i-X" in interface
        assert "missing" not in interface

    def test_duplicate_name_rejected(self):
        interface = FourVariableInterface()
        interface.monitored("m-X")
        with pytest.raises(ValueError):
            interface.input("m-X")

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            FourVariableInterface().get("nope")

    def test_variables_filtered_by_kind(self):
        interface = FourVariableInterface()
        interface.monitored("m-A")
        interface.monitored("m-B")
        interface.controlled("c-A")
        assert interface.names(VariableKind.MONITORED) == ["m-A", "m-B"]
        assert interface.names(VariableKind.CONTROLLED) == ["c-A"]
        assert len(interface.variables()) == 3

    def test_link_input_requires_matching_kinds(self):
        interface = FourVariableInterface()
        interface.monitored("m-X")
        interface.input("i-X")
        interface.link_input("m-X", "i-X")
        assert interface.input_for_monitored("m-X") == "i-X"
        assert interface.monitored_for_input("i-X") == "m-X"
        with pytest.raises(ValueError):
            interface.link_input("i-X", "m-X")

    def test_link_output_mapping(self):
        interface = FourVariableInterface()
        interface.output("o-X")
        interface.controlled("c-X")
        interface.link_output("o-X", "c-X")
        assert interface.controlled_for_output("o-X") == "c-X"
        assert interface.output_for_controlled("c-X") == "o-X"
        assert interface.input_for_monitored("nothing") is None

    def test_invalid_variable_type_rejected(self):
        with pytest.raises(ValueError):
            VariableSpec("x", VariableKind.INPUT, var_type="complex")

    def test_pump_interface_is_consistent(self, pump_interface):
        pump_interface.validate()
        assert pump_interface.input_for_monitored("m-BolusReq") == "i-BolusReq"
        assert pump_interface.controlled_for_output("o-MotorState") == "c-PumpMotor"
        assert len(pump_interface.variables(VariableKind.MONITORED)) == 5


class TestEventAndTrace:
    def test_event_matching(self):
        event = Event(EventKind.M, "m-X", True, 100)
        assert event.matches(EventKind.M, "m-X")
        assert not event.matches(EventKind.C, "m-X")
        assert not event.matches(EventKind.M, "m-Y")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Event(EventKind.M, "m-X", True, -1)

    def test_trace_requires_time_order(self):
        trace = Trace()
        trace.append(Event(EventKind.M, "a", 1, 100))
        with pytest.raises(ValueError):
            trace.append(Event(EventKind.M, "a", 1, 50))

    def test_select_filters(self):
        trace = Trace(
            [
                Event(EventKind.M, "m-X", True, 10),
                Event(EventKind.I, "i-X", True, 20),
                Event(EventKind.C, "c-X", 1, 30),
                Event(EventKind.M, "m-X", False, 40),
            ]
        )
        assert len(trace.select(kind=EventKind.M)) == 2
        assert len(trace.select(variable="i-X")) == 1
        assert len(trace.select(after_us=20, before_us=30)) == 2
        assert len(trace.select(kind=EventKind.M, predicate=lambda e: e.value)) == 1

    def test_first_after(self):
        trace = Trace(
            [
                Event(EventKind.C, "c-X", 1, 30),
                Event(EventKind.C, "c-X", 2, 60),
            ]
        )
        assert trace.first(kind=EventKind.C, after_us=40).value == 2
        assert trace.first(kind=EventKind.C, after_us=100) is None

    def test_restricted_to(self):
        trace = Trace(
            [
                Event(EventKind.M, "m-X", True, 10),
                Event(EventKind.I, "i-X", True, 20),
                Event(EventKind.O, "o-X", 1, 25),
                Event(EventKind.C, "c-X", 1, 30),
            ]
        )
        restricted = trace.restricted_to([EventKind.M, EventKind.C])
        assert [event.kind for event in restricted] == [EventKind.M, EventKind.C]

    def test_value_changes_deduplicates(self):
        trace = Trace(
            [
                Event(EventKind.C, "c-X", 0, 10),
                Event(EventKind.C, "c-X", 1, 20),
                Event(EventKind.C, "c-X", 1, 30),
                Event(EventKind.C, "c-X", 0, 40),
            ]
        )
        assert trace.value_changes(EventKind.C, "c-X") == [(10, 0), (20, 1), (40, 0)]

    def test_duration(self):
        trace = Trace([Event(EventKind.M, "a", 1, 10), Event(EventKind.M, "a", 1, 110)])
        assert trace.duration_us == 100
        assert Trace().duration_us == 0

    def test_first_bounded_by_before_us(self):
        trace = Trace(
            [
                Event(EventKind.C, "c-X", 1, 30),
                Event(EventKind.C, "c-X", 2, 60),
            ]
        )
        assert trace.first(kind=EventKind.C, after_us=40, before_us=100).value == 2
        assert trace.first(kind=EventKind.C, after_us=40, before_us=50) is None

    def test_select_kinds_preserves_trace_order(self):
        trace = Trace(
            [
                Event(EventKind.M, "m-X", True, 10),
                Event(EventKind.I, "i-X", True, 10),
                Event(EventKind.C, "c-X", 1, 10),
                Event(EventKind.M, "m-X", False, 20),
            ]
        )
        selected = trace.select_kinds((EventKind.C, EventKind.M))
        # Trace order (not argument order) decides ties at the same timestamp.
        assert [(event.kind, event.timestamp_us) for event in selected] == [
            (EventKind.M, 10),
            (EventKind.C, 10),
            (EventKind.M, 20),
        ]
        assert trace.select_kinds((EventKind.M,), after_us=15) == [trace[3]]

    def test_events_view_is_stable_and_immutable(self):
        trace = Trace([Event(EventKind.M, "a", 1, 10)])
        view = trace.events
        assert isinstance(view, tuple)
        assert trace.events is view  # cached until the next append
        trace.append(Event(EventKind.M, "a", 2, 20))
        refreshed = trace.events
        assert refreshed is not view
        assert len(refreshed) == 2

    def test_extend_validates_batch_order(self):
        trace = Trace([Event(EventKind.M, "a", 1, 100)])
        with pytest.raises(ValueError):
            trace.extend(
                [
                    Event(EventKind.M, "a", 1, 150),
                    Event(EventKind.M, "a", 1, 120),
                ]
            )

    def test_pure_window_queries_do_not_build_indexes(self):
        trace = Trace(
            [
                Event(EventKind.M, "m-X", True, 10),
                Event(EventKind.C, "c-X", 1, 30),
            ]
        )
        assert [event.timestamp_us for event in trace.select(after_us=20)] == [30]
        assert trace.first(before_us=20).timestamp_us == 10
        assert trace._indexed_upto == 0  # timestamp bisection alone served these
        trace.select(kind=EventKind.M)
        assert trace._indexed_upto == 2

    def test_from_sorted_matches_validated_construction(self):
        events = [
            Event(EventKind.M, "m-X", True, 10),
            Event(EventKind.C, "c-X", 1, 30),
        ]
        fast = Trace.from_sorted(events)
        assert list(fast) == events
        assert fast.select(kind=EventKind.C) == [events[1]]


class TestRecorder:
    def test_records_with_clock_timestamps(self):
        now = {"value": 0}
        recorder = TraceRecorder(lambda: now["value"])
        recorder.record_m("m-X", True)
        now["value"] = 500
        recorder.record_i("i-X", True)
        recorder.record_o("o-X", 1)
        recorder.record_c("c-X", 1)
        kinds = [event.kind for event in recorder.trace]
        assert kinds == [EventKind.M, EventKind.I, EventKind.O, EventKind.C]
        assert recorder.trace[1].timestamp_us == 500

    def test_transition_probes(self):
        recorder = TraceRecorder(lambda: 42)
        recorder.record_transition_start("t_x")
        recorder.record_transition_end("t_x")
        assert [event.kind for event in recorder.trace] == [
            EventKind.TRANSITION_START,
            EventKind.TRANSITION_END,
        ]

    def test_meta_attached(self):
        recorder = TraceRecorder(lambda: 0)
        recorder.record_m("m-X", True, device="button")
        assert recorder.trace[-1].meta["device"] == "button"

    def test_reset_starts_new_trace(self):
        recorder = TraceRecorder(lambda: 0)
        recorder.record_m("m-X", True)
        recorder.reset()
        assert len(recorder.trace) == 0
