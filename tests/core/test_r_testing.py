"""Unit tests for R-testing using a synthetic (trace-replay) system under test."""

import pytest

from repro.core.four_variables import Event, EventKind, FourVariableInterface, Trace
from repro.core.r_testing import RTestRunner, SampleVerdict
from repro.core.requirements import EventSpec, TimingRequirement
from repro.core.sut import SystemUnderTest
from repro.core.test_generation import RTestCase, Stimulus
from repro.platform.kernel.time import ms


def make_requirement(deadline_ms=100, timeout_ms=500):
    return TimingRequirement(
        requirement_id="R-TEST",
        stimulus=EventSpec.becomes("m-Req", True),
        response=EventSpec.becomes_positive("c-Act"),
        deadline_us=ms(deadline_ms),
        timeout_us=ms(timeout_ms),
    )


class ReplaySut(SystemUnderTest):
    """A fake implemented system with a fixed response latency per stimulus.

    Latency ``None`` means the response is never produced (a MAX sample).
    """

    name = "replay-sut"

    def __init__(self, latencies_ms):
        self._latencies = list(latencies_ms)
        self._stimuli = []
        self._interface = FourVariableInterface()
        self._interface.monitored("m-Req")
        self._interface.controlled("c-Act")
        self._trace = Trace()

    @property
    def interface(self):
        return self._interface

    def apply_stimulus(self, stimulus: Stimulus) -> None:
        self._stimuli.append(stimulus)

    def run(self, until_us: int) -> None:
        events = []
        for index, stimulus in enumerate(self._stimuli):
            events.append(Event(EventKind.M, "m-Req", True, stimulus.at_us))
            latency = self._latencies[index] if index < len(self._latencies) else None
            if latency is not None:
                events.append(Event(EventKind.C, "c-Act", 1, stimulus.at_us + ms(latency)))
        self._trace = Trace(sorted(events, key=lambda event: event.timestamp_us))

    @property
    def trace(self):
        return self._trace


def make_case(requirement, count=3, spacing_ms=1000):
    stimuli = tuple(Stimulus(ms(10 + index * spacing_ms), "m-Req") for index in range(count))
    return RTestCase(name="case", requirement=requirement, stimuli=stimuli)


class TestVerdicts:
    def test_all_within_deadline_passes(self):
        requirement = make_requirement(deadline_ms=100)
        report = RTestRunner(lambda: ReplaySut([50, 80, 99])).run(make_case(requirement))
        assert report.passed
        assert report.violation_count == 0
        assert [sample.verdict for sample in report.samples] == [SampleVerdict.PASS] * 3

    def test_latency_above_deadline_fails(self):
        requirement = make_requirement(deadline_ms=100)
        report = RTestRunner(lambda: ReplaySut([50, 120, 80])).run(make_case(requirement))
        assert not report.passed
        assert report.violation_count == 1
        assert report.samples[1].verdict is SampleVerdict.FAIL

    def test_missing_response_is_max(self):
        requirement = make_requirement()
        report = RTestRunner(lambda: ReplaySut([50, None, 80])).run(make_case(requirement))
        assert report.samples[1].verdict is SampleVerdict.MAX
        assert report.samples[1].latency_label() == "MAX"
        assert report.timeout_count == 1

    def test_latency_exactly_at_deadline_passes(self):
        requirement = make_requirement(deadline_ms=100)
        report = RTestRunner(lambda: ReplaySut([100])).run(make_case(requirement, count=1))
        assert report.passed

    def test_response_after_timeout_is_max(self):
        requirement = make_requirement(deadline_ms=100, timeout_ms=300)
        report = RTestRunner(lambda: ReplaySut([400])).run(make_case(requirement, count=1))
        assert report.samples[0].verdict is SampleVerdict.MAX

    def test_report_statistics(self):
        requirement = make_requirement()
        report = RTestRunner(lambda: ReplaySut([50, 150, 100])).run(make_case(requirement))
        assert report.max_latency_us == ms(150)
        assert report.mean_latency_us == pytest.approx(ms(100))
        assert len(report.violating_samples) == 1

    def test_summary_mentions_requirement_and_verdict(self):
        requirement = make_requirement()
        report = RTestRunner(lambda: ReplaySut([50])).run(make_case(requirement, count=1))
        summary = report.summary()
        assert "R-TEST" in summary and "PASS" in summary


class TestRTestingUsesOnlyMCEvents:
    def test_io_events_in_trace_are_ignored(self):
        """R-testing must judge from m/c events only (the paper's constraint)."""
        requirement = make_requirement(deadline_ms=100)

        class NoisySut(ReplaySut):
            def run(self, until_us):
                super().run(until_us)
                events = list(self._trace)
                # Insert an o-event that *looks* like an early response.
                events.append(Event(EventKind.O, "c-Act", 1, ms(1)))
                self._trace = Trace(sorted(events, key=lambda event: event.timestamp_us))

        report = RTestRunner(lambda: NoisySut([150])).run(make_case(requirement, count=1))
        assert report.samples[0].verdict is SampleVerdict.FAIL

    def test_evaluate_existing_trace(self):
        requirement = make_requirement()
        trace = Trace(
            [
                Event(EventKind.M, "m-Req", True, ms(10)),
                Event(EventKind.C, "c-Act", 1, ms(70)),
            ]
        )
        case = make_case(requirement, count=1)
        report = RTestRunner.evaluate("offline", case, trace)
        assert report.sut_name == "offline"
        assert report.samples[0].latency_us == ms(60)
