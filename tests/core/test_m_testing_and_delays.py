"""Unit tests for M-testing delay segmentation on synthetic traces."""

import pytest

from repro.core.delays import DelaySegments, SegmentStatistics, TransitionDelay, summarize_segments
from repro.core.four_variables import Event, EventKind, FourVariableInterface, Trace
from repro.core.m_testing import MTestAnalyzer, MTestingError
from repro.core.r_testing import RTestRunner
from repro.core.requirements import EventSpec, TimingRequirement
from repro.core.test_generation import RTestCase, Stimulus
from repro.platform.kernel.time import ms


def make_interface():
    interface = FourVariableInterface()
    interface.monitored("m-Req")
    interface.input("i-Req")
    interface.output("o-Act")
    interface.controlled("c-Act")
    interface.link_input("m-Req", "i-Req")
    interface.link_output("o-Act", "c-Act")
    return interface


def make_requirement():
    return TimingRequirement(
        requirement_id="REQ-M",
        stimulus=EventSpec.becomes("m-Req", True),
        response=EventSpec.becomes_positive("c-Act"),
        deadline_us=ms(100),
        model_trigger_event="i-Req",
        model_response_variable="o-Act",
        model_response_value=1,
    )


def instrumented_trace():
    """m at 10, i at 30, transitions, o at 70, c at 90 (all in ms)."""
    return Trace(
        [
            Event(EventKind.M, "m-Req", True, ms(10)),
            Event(EventKind.I, "i-Req", True, ms(30)),
            Event(EventKind.TRANSITION_START, "t_accept", None, ms(32)),
            Event(EventKind.TRANSITION_END, "t_accept", None, ms(43)),
            Event(EventKind.TRANSITION_START, "t_respond", None, ms(50)),
            Event(EventKind.TRANSITION_END, "t_respond", None, ms(70)),
            Event(EventKind.O, "o-Act", 1, ms(70)),
            Event(EventKind.C, "c-Act", 1, ms(90)),
        ]
    )


class TestDelaySegments:
    def test_segment_arithmetic(self):
        segments = DelaySegments(0, ms(10), ms(30), ms(70), ms(90))
        assert segments.input_delay_us == ms(20)
        assert segments.code_delay_us == ms(40)
        assert segments.output_delay_us == ms(20)
        assert segments.end_to_end_us == ms(80)
        assert segments.complete
        assert segments.segments_consistent()
        assert segments.dominant_segment() == "code"

    def test_incomplete_segments(self):
        segments = DelaySegments(0, ms(10), ms(30), None, None)
        assert segments.code_delay_us is None
        assert not segments.complete
        assert segments.dominant_segment() is None
        assert not segments.segments_consistent()

    def test_transition_delay_duration(self):
        delay = TransitionDelay("t", ms(10), ms(21))
        assert delay.duration_us == ms(11)
        with pytest.raises(ValueError):
            TransitionDelay("t", ms(10), ms(5))

    def test_summarize_segments(self):
        segments = [
            DelaySegments(0, 0, ms(10), ms(30), ms(40)),
            DelaySegments(1, 0, ms(20), ms(50), ms(70)),
        ]
        stats = {item.name: item for item in summarize_segments(segments)}
        assert stats["input_delay"].mean_us == ms(15)
        assert stats["end_to_end"].max_us == ms(70)
        assert SegmentStatistics.from_values("x", []) is None


class TestMTestAnalyzer:
    def test_segments_extracted_from_trace(self):
        analyzer = MTestAnalyzer(make_interface(), make_requirement())
        report = analyzer.analyze(instrumented_trace(), sut_name="synthetic")
        assert len(report.segments) == 1
        segment = report.segments[0]
        assert segment.input_delay_us == ms(20)
        assert segment.code_delay_us == ms(40)
        assert segment.output_delay_us == ms(20)
        assert segment.segments_consistent()

    def test_transition_delays_paired(self):
        analyzer = MTestAnalyzer(make_interface(), make_requirement())
        report = analyzer.analyze(instrumented_trace())
        delays = {d.transition: d.duration_us for d in report.segments[0].transition_delays}
        assert delays == {"t_accept": ms(11), "t_respond": ms(20)}
        assert report.mean_transition_delay_us("t_accept") == ms(11)
        assert report.transition_names() == ["t_accept", "t_respond"]

    def test_missing_mapping_raises(self):
        interface = FourVariableInterface()
        interface.monitored("m-Req")
        interface.controlled("c-Act")
        with pytest.raises(MTestingError):
            MTestAnalyzer(interface, make_requirement())

    def test_missing_response_gives_incomplete_segment(self):
        trace = Trace(
            [
                Event(EventKind.M, "m-Req", True, ms(10)),
                Event(EventKind.I, "i-Req", True, ms(30)),
            ]
        )
        analyzer = MTestAnalyzer(make_interface(), make_requirement())
        report = analyzer.analyze(trace)
        segment = report.segments[0]
        assert segment.i_time_us == ms(30)
        assert segment.o_time_us is None and segment.c_time_us is None
        assert not segment.complete

    def test_dominant_segment_diagnosis(self):
        analyzer = MTestAnalyzer(make_interface(), make_requirement())
        report = analyzer.analyze(instrumented_trace())
        assert report.dominant_segment() == "code"
        assert "code" in report.summary()

    def test_analyze_violations_restricts_to_failing_samples(self):
        requirement = make_requirement()
        # Two stimuli: the first passes (80 ms), the second fails (150 ms).
        events = [
            Event(EventKind.M, "m-Req", True, ms(10)),
            Event(EventKind.I, "i-Req", True, ms(20)),
            Event(EventKind.O, "o-Act", 1, ms(60)),
            Event(EventKind.C, "c-Act", 1, ms(90)),
            Event(EventKind.C, "c-Act", 0, ms(200)),
            Event(EventKind.M, "m-Req", True, ms(1000)),
            Event(EventKind.I, "i-Req", True, ms(1050)),
            Event(EventKind.O, "o-Act", 1, ms(1100)),
            Event(EventKind.C, "c-Act", 1, ms(1150)),
        ]
        trace = Trace(sorted(events, key=lambda event: event.timestamp_us))
        case = RTestCase(
            name="two",
            requirement=requirement,
            stimuli=(Stimulus(ms(10), "m-Req"), Stimulus(ms(1000), "m-Req")),
        )
        r_report = RTestRunner.evaluate("replay", case, trace)
        assert r_report.violation_count == 1
        analyzer = MTestAnalyzer(make_interface(), requirement)
        m_report = analyzer.analyze_violations(r_report)
        assert m_report.analyzed_sample_indices == [1]
        assert m_report.segments[0].end_to_end_us == ms(150)

    def test_analyze_violations_requires_trace(self):
        from repro.core.r_testing import RTestReport

        requirement = make_requirement()
        case = RTestCase(name="empty", requirement=requirement, stimuli=())
        report = RTestReport(sut_name="x", test_case=case, samples=[], trace=None)
        analyzer = MTestAnalyzer(make_interface(), requirement)
        with pytest.raises(MTestingError):
            analyzer.analyze_violations(report)
