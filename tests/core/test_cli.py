"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import main


class TestVerifyCommand:
    def test_verify_passes_on_fig2_model(self, capsys):
        assert main(["verify"]) == 0
        output = capsys.readouterr().out
        assert "REQ1" in output and "PASS" in output

    def test_verify_extended_model(self, capsys):
        assert main(["verify", "--extended"]) == 0
        assert "gpca_extended" in capsys.readouterr().out


class TestCodegenCommand:
    def test_codegen_prints_source(self, capsys):
        assert main(["codegen"]) == 0
        output = capsys.readouterr().out
        assert "gpca_fig2_step" in output

    def test_codegen_writes_file(self, tmp_path, capsys):
        target = tmp_path / "gpca.c"
        assert main(["codegen", "--output", str(target)]) == 0
        assert "switch" in target.read_text()


class TestRtestCommand:
    def test_rtest_scheme2_passes(self, capsys):
        exit_code = main(["rtest", "--scheme", "2", "--samples", "3", "--seed", "5"])
        assert exit_code == 0
        assert "R-testing report" in capsys.readouterr().out

    def test_rtest_scheme3_fails_and_writes_artifacts(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        csv_path = tmp_path / "samples.csv"
        m_json_path = tmp_path / "m_report.json"
        exit_code = main(
            [
                "rtest",
                "--scheme",
                "3",
                "--samples",
                "3",
                "--seed",
                "9",
                "--m-test",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
                "--m-json",
                str(m_json_path),
            ]
        )
        assert exit_code == 1
        output = capsys.readouterr().out
        assert "M-testing report" in output
        payload = json.loads(json_path.read_text())
        assert payload["requirement"]["id"] == "REQ1"
        assert not payload["passed"]
        assert csv_path.read_text().startswith("sample,")
        m_payload = json.loads(m_json_path.read_text())
        assert m_payload["segments"]

    def test_rtest_requires_scheme(self):
        with pytest.raises(SystemExit):
            main(["rtest"])


class TestTable1Command:
    def test_table1_renders_and_writes(self, tmp_path, capsys):
        target = tmp_path / "table1.txt"
        exit_code = main(["table1", "--samples", "3", "--output", str(target)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "TABLE I" in output
        assert "Scheme 3" in target.read_text()


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            main([])
