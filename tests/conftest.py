"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.codegen import generate_code
from repro.core import TraceRecorder
from repro.gpca import (
    build_extended_statechart,
    build_fig2_statechart,
    build_pump_interface,
    req1_bolus_start,
)
from repro.platform import Simulator


@pytest.fixture
def fig2_chart():
    """The Fig. 2 infusion-pump statechart."""
    return build_fig2_statechart()


@pytest.fixture
def extended_chart():
    """The extended GPCA statechart."""
    return build_extended_statechart()


@pytest.fixture
def fig2_artifacts(fig2_chart):
    """Generated CODE(M) artefacts for the Fig. 2 chart."""
    return generate_code(fig2_chart)


@pytest.fixture
def pump_interface():
    """The four-variable interface of the pump."""
    return build_pump_interface()


@pytest.fixture
def req1():
    """REQ1: bolus start within 100 ms."""
    return req1_bolus_start()


@pytest.fixture
def simulator():
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def recorder(simulator):
    """A trace recorder bound to the simulator clock."""
    return TraceRecorder(lambda: simulator.now)
