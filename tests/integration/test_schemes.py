"""Integration tests of the three implementation schemes on the simulated platform."""

import pytest

from repro.core import EventKind, RTestRunner
from repro.core.test_generation import Stimulus
from repro.gpca import (
    PumpBuildOptions,
    bolus_request_test_case,
    make_scheme1_system,
    make_scheme2_system,
    make_scheme3_system,
    make_system,
    scheme_factory,
)
from repro.integration.multi_threaded import MultiThreadedConfig
from repro.integration.single_threaded import SingleThreadedConfig
from repro.platform.kernel.time import ms, seconds


def run_single_bolus(system, at_us=ms(100), until_us=seconds(6)):
    system.apply_stimulus(Stimulus(at_us, "m-BolusReq"))
    system.run(until_us)
    return system.trace


class TestScheme1:
    def test_bolus_request_reaches_motor(self):
        trace = run_single_bolus(make_scheme1_system(PumpBuildOptions(seed=1)))
        m_events = trace.select(kind=EventKind.M, variable="m-BolusReq")
        c_events = trace.select(kind=EventKind.C, variable="c-PumpMotor")
        assert len(m_events) == 1
        assert c_events and c_events[0].value > 0
        assert c_events[0].timestamp_us > m_events[0].timestamp_us

    def test_motor_stops_after_bolus_duration(self):
        trace = run_single_bolus(make_scheme1_system(PumpBuildOptions(seed=1)))
        changes = trace.value_changes(EventKind.C, "c-PumpMotor")
        assert [value for _, value in changes[:2]] == [1, 0]
        start, stop = changes[0][0], changes[1][0]
        # The bolus lasts 4000 model ticks; platform delays add a little.
        assert seconds(3.9) < stop - start < seconds(4.3)

    def test_io_and_transition_events_recorded(self):
        trace = run_single_bolus(make_scheme1_system(PumpBuildOptions(seed=1)))
        assert trace.select(kind=EventKind.I, variable="i-BolusReq")
        assert trace.select(kind=EventKind.O, variable="o-MotorState")
        assert trace.select(kind=EventKind.TRANSITION_START, variable="t_bolus_req")

    def test_single_task_created(self):
        system = make_scheme1_system(PumpBuildOptions(seed=1))
        system.build()
        assert [task.name for task in system.scheduler.tasks] == ["codem_loop"]

    def test_unknown_stimulus_variable_rejected(self):
        system = make_scheme1_system(PumpBuildOptions(seed=1))
        with pytest.raises(KeyError):
            system.apply_stimulus(Stimulus(ms(1), "m-Nonexistent"))


class TestScheme2:
    def test_pipeline_tasks_and_queues_created(self):
        system = make_scheme2_system(PumpBuildOptions(seed=2))
        system.build()
        names = {task.name for task in system.scheduler.tasks}
        assert names == {"sensing", "codem", "actuation"}
        assert system.input_queue is not None and system.output_queue is not None

    def test_period_sum_below_deadline(self):
        config = MultiThreadedConfig()
        assert config.period_sum_us < ms(100)

    def test_bolus_latency_within_deadline(self):
        system = make_scheme2_system(PumpBuildOptions(seed=2))
        trace = run_single_bolus(system)
        m_event = trace.first(kind=EventKind.M, variable="m-BolusReq")
        c_event = trace.first(
            kind=EventKind.C, variable="c-PumpMotor", predicate=lambda event: event.value
        )
        assert c_event.timestamp_us - m_event.timestamp_us <= ms(100)

    def test_queues_carry_traffic(self):
        system = make_scheme2_system(PumpBuildOptions(seed=2))
        run_single_bolus(system)
        assert system.input_queue.stats.sent >= 1
        assert system.output_queue.stats.sent >= 1
        assert system.input_queue.stats.dropped == 0


class TestScheme3:
    def test_interference_tasks_created_with_relative_priorities(self):
        system = make_scheme3_system(PumpBuildOptions(seed=3))
        system.build()
        by_name = {task.name: task for task in system.scheduler.tasks}
        codem_priority = by_name["codem"].priority
        assert by_name["net_driver"].priority > codem_priority
        assert by_name["logger"].priority == codem_priority
        assert by_name["diagnostics"].priority < codem_priority

    def test_interference_inflates_latency_compared_to_scheme2(self):
        def latency(system):
            trace = run_single_bolus(system)
            m_event = trace.first(kind=EventKind.M, variable="m-BolusReq")
            c_event = trace.first(
                kind=EventKind.C, variable="c-PumpMotor", predicate=lambda event: event.value
            )
            return c_event.timestamp_us - m_event.timestamp_us

        clean = latency(make_scheme2_system(PumpBuildOptions(seed=4)))
        interfered = latency(make_scheme3_system(PumpBuildOptions(seed=4)))
        assert interfered > clean

    def test_codem_thread_is_preempted(self):
        system = make_scheme3_system(PumpBuildOptions(seed=3))
        run_single_bolus(system)
        stats = system.task_statistics()
        assert stats["codem"].preemptions > 0

    def test_interference_utilization_reported(self):
        system = make_scheme3_system(PumpBuildOptions(seed=3))
        assert system.config.interference_utilization > 0.5


class TestSchemeComparison:
    """The paper's qualitative Table I shape across the three schemes."""

    def test_scheme2_passes_req1(self):
        report = RTestRunner(scheme_factory(2, seed=22)).run(
            bolus_request_test_case(samples=5, seed=5)
        )
        assert report.passed

    def test_scheme3_violates_req1(self):
        report = RTestRunner(scheme_factory(3, seed=33)).run(
            bolus_request_test_case(samples=5, seed=5)
        )
        assert not report.passed

    def test_scheme3_is_worse_than_scheme1(self):
        case = bolus_request_test_case(samples=5, seed=5)
        scheme1 = RTestRunner(scheme_factory(1, seed=11)).run(case)
        scheme3 = RTestRunner(scheme_factory(3, seed=11)).run(case)
        assert scheme3.violation_count >= scheme1.violation_count

    def test_make_system_dispatch(self):
        assert make_system(1).scheme_name.startswith("scheme1")
        assert make_system(2).scheme_name.startswith("scheme2")
        assert make_system(3).scheme_name.startswith("scheme3")
        with pytest.raises(ValueError):
            make_system(4)

    def test_scheme1_transitions_per_cycle_default(self):
        assert SingleThreadedConfig().transitions_per_cycle == 1
        assert MultiThreadedConfig().transitions_per_cycle is None
