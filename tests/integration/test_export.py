"""Tests of Markdown / CSV export of analysis artefacts."""

import csv
import io

import pytest

from repro.analysis import SchemeResult, TableOne
from repro.analysis.export import (
    sweep_to_csv,
    sweep_to_markdown,
    table_one_to_csv,
    table_one_to_markdown,
)
from repro.analysis.figures import SweepPoint
from repro.core import MTestAnalyzer, RTestRunner
from repro.gpca import (
    bolus_request_test_case,
    build_pump_interface,
    req1_bolus_start,
    scheme_factory,
    scheme_name,
)


@pytest.fixture(scope="module")
def small_table():
    table = TableOne()
    test_case = bolus_request_test_case(samples=3, seed=2)
    for scheme in (1, 2):
        r_report = RTestRunner(scheme_factory(scheme, seed=scheme)).run(test_case)
        m_report = MTestAnalyzer(build_pump_interface(), req1_bolus_start()).analyze(
            r_report.trace, sut_name=r_report.sut_name
        )
        table.add(SchemeResult(scheme, scheme_name(scheme), r_report, m_report))
    return table


SWEEP = [
    SweepPoint(parameter=25.0, violation_rate=0.3, timeout_count=0, max_latency_ms=110.0, mean_latency_ms=95.0),
    SweepPoint(parameter=10.0, violation_rate=0.0, timeout_count=0, max_latency_ms=80.0, mean_latency_ms=70.0),
]


class TestTableExport:
    def test_markdown_contains_all_samples_and_schemes(self, small_table):
        markdown = table_one_to_markdown(small_table)
        assert markdown.count("\n| ") >= 3  # header + 3 sample rows
        assert "Scheme 1" in markdown and "Scheme 2" in markdown
        assert markdown.startswith("###")

    def test_markdown_summary_lines(self, small_table):
        markdown = table_one_to_markdown(small_table)
        assert "R-testing PASS" in markdown or "R-testing FAIL" in markdown

    def test_csv_round_trips_through_csv_reader(self, small_table):
        text = table_one_to_csv(small_table)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        assert "scheme1_r" in rows[0] and "scheme2_code" in rows[0]

    def test_empty_table_csv(self):
        assert table_one_to_csv(TableOne()) == ""


class TestSweepExport:
    def test_markdown_sorted_by_parameter(self):
        markdown = sweep_to_markdown(SWEEP, "period (ms)")
        assert markdown.index("| 10 |") < markdown.index("| 25 |")
        assert "0%" in markdown and "30%" in markdown

    def test_csv_fields(self):
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(SWEEP, "period_ms"))))
        assert len(rows) == 2
        assert rows[0]["period_ms"] == "10.0"
        assert rows[1]["violation_rate"] == "0.3"
