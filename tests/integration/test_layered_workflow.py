"""End-to-end tests of the layered R-then-M workflow on the case study."""

import pytest

from repro.analysis import SchemeResult, TableOne, fig3_views, model_timing_view
from repro.core import MTestAnalyzer, RTestRunner, TransitionCoverage, render_layered_summary
from repro.gpca import (
    TRANS_BOLUS_REQUEST,
    TRANS_START_INFUSION,
    bolus_request_test_case,
    build_fig2_statechart,
    build_pump_interface,
    req1_bolus_start,
    scheme_factory,
    scheme_name,
)


@pytest.fixture(scope="module")
def scheme3_run():
    """One scheme-3 R-test execution shared by the workflow tests (expensive)."""
    test_case = bolus_request_test_case(samples=5, seed=9)
    report = RTestRunner(scheme_factory(3, seed=99)).run(test_case)
    return test_case, report


@pytest.fixture(scope="module")
def scheme3_m_report(scheme3_run):
    _, r_report = scheme3_run
    analyzer = MTestAnalyzer(build_pump_interface(), req1_bolus_start())
    return analyzer.analyze_violations(r_report)


class TestLayeredWorkflow:
    def test_r_testing_detects_violation_without_io_probes(self, scheme3_run):
        _, report = scheme3_run
        assert not report.passed

    def test_m_testing_segments_only_violating_samples(self, scheme3_run, scheme3_m_report):
        _, r_report = scheme3_run
        assert scheme3_m_report.analyzed_sample_indices == [
            sample.index for sample in r_report.violating_samples
        ]

    def test_segments_decompose_end_to_end_latency(self, scheme3_run, scheme3_m_report):
        _, r_report = scheme3_run
        latency_by_index = {sample.index: sample.latency_us for sample in r_report.samples}
        for segment in scheme3_m_report.segments:
            if not segment.complete:
                continue
            assert segment.segments_consistent()
            assert segment.end_to_end_us == latency_by_index[segment.sample_index]

    def test_transition_delays_reference_model_transitions(self, scheme3_m_report):
        names = set(scheme3_m_report.transition_names())
        assert TRANS_BOLUS_REQUEST in names
        assert TRANS_START_INFUSION in names

    def test_layered_summary_gives_diagnosis(self, scheme3_run, scheme3_m_report):
        _, r_report = scheme3_run
        text = render_layered_summary(r_report, scheme3_m_report)
        assert "Diagnosis" in text

    def test_transition_coverage_of_the_run(self, scheme3_run, fig2_artifacts):
        _, r_report = scheme3_run
        coverage = TransitionCoverage.for_code_model(fig2_artifacts.code_model)
        coverage.add_trace(r_report.trace)
        # The bolus scenario exercises request, start and completion transitions.
        assert {TRANS_BOLUS_REQUEST, TRANS_START_INFUSION, "t_bolus_done"} <= coverage.covered
        assert coverage.ratio >= 3 / 5


class TestTableOneAssembly:
    def test_table_contains_all_schemes_and_samples(self, scheme3_run, scheme3_m_report):
        _, r_report = scheme3_run
        table = TableOne()
        table.add(SchemeResult(3, scheme_name(3), r_report, scheme3_m_report))
        rows = table.rows()
        assert len(rows) == 5
        assert any("*" in row["scheme3_r"] or row["scheme3_r"] == "MAX" for row in rows)
        rendered = table.render()
        assert "TABLE I" in rendered
        assert "Scheme 3" in rendered

    def test_summary_rows(self, scheme3_run, scheme3_m_report):
        _, r_report = scheme3_run
        result = SchemeResult(3, scheme_name(3), r_report, scheme3_m_report)
        summary = result.summary_row()
        assert summary["violations"] > 0
        assert summary["dominant_segment"] in {"input", "code", "output"}


class TestFig3Views:
    def test_model_view_matches_verified_bound(self, req1):
        view = model_timing_view(build_fig2_statechart(), req1)
        assert view.within_deadline
        assert view.response_latency_ticks == 0  # eager model semantics
        assert view.deadline_ticks == 100

    def test_fig3_views_for_violations(self, scheme3_m_report, req1):
        views = fig3_views(build_fig2_statechart(), req1, scheme3_m_report)
        assert len(views) == len(scheme3_m_report.segments)
        rendered = views[0].render()
        assert "(a) model" in rendered
        assert "(d) transitions" in rendered
        io_view = views[0].io_view
        assert set(io_view.keys()) == {"m", "i", "o", "c"}
