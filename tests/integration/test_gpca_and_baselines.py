"""Tests of the GPCA scenario catalogue and the related-work baselines."""


from repro.baselines import (
    BlackBoxOnlineTester,
    FunctionalConformanceChecker,
    FunctionalStep,
)
from repro.codegen import generate_code
from repro.core import RTestRunner
from repro.gpca import (
    alarm_clear_test_case,
    bolus_request_test_case,
    build_extended_statechart,
    build_fig2_statechart,
    empty_reservoir_alarm_test_case,
    empty_reservoir_stop_test_case,
    scheme_factory,
)


class TestGpcaScenarios:
    def test_bolus_scenario_spacing_respects_bolus_duration(self):
        case = bolus_request_test_case(samples=6, seed=1)
        times = case.stimulus_times()
        assert all(b - a >= case.requirement.min_stimulus_separation_us for a, b in zip(times, times[1:]))

    def test_empty_reservoir_alarm_scenario_on_scheme2(self):
        report = RTestRunner(scheme_factory(2, seed=5)).run(empty_reservoir_alarm_test_case(samples=3))
        assert len(report.samples) == 3
        assert report.passed

    def test_empty_reservoir_stop_scenario_on_scheme2(self):
        report = RTestRunner(scheme_factory(2, seed=5)).run(empty_reservoir_stop_test_case(samples=3))
        assert len(report.samples) == 3
        assert report.passed

    def test_alarm_clear_scenario_on_scheme2(self):
        report = RTestRunner(scheme_factory(2, seed=5)).run(alarm_clear_test_case(samples=3))
        assert len(report.samples) == 3
        assert report.passed

    def test_extended_model_runs_on_scheme2(self):
        # Start after the 500 ms power-on self test of the extended chart.
        case = bolus_request_test_case(samples=3, seed=2, start_offset_us=800_000)
        report = RTestRunner(scheme_factory(2, seed=6, use_extended_model=True)).run(case)
        assert len(report.samples) == 3
        assert report.passed

    def test_request_during_power_on_test_is_ignored(self):
        """A request during the extended model's self test gets no bolus (MAX),
        exactly as the model specifies."""
        case = bolus_request_test_case(samples=1, seed=2, start_offset_us=150_000)
        report = RTestRunner(scheme_factory(2, seed=6, use_extended_model=True)).run(case)
        assert report.samples[0].timed_out


class TestBlackBoxBaseline:
    def test_reaches_same_verdict_as_r_testing(self):
        case = bolus_request_test_case(samples=4, seed=3)
        r_report = RTestRunner(scheme_factory(3, seed=44)).run(case)
        bb_report = BlackBoxOnlineTester(scheme_factory(3, seed=44)).run(case)
        assert bb_report.passed == r_report.passed
        assert bb_report.violation_count == r_report.violation_count

    def test_provides_no_diagnostic_information(self):
        case = bolus_request_test_case(samples=2, seed=3)
        report = BlackBoxOnlineTester(scheme_factory(3, seed=44)).run(case)
        assert report.diagnostic_information() == []
        assert "0 delay segments" in report.summary()

    def test_passing_system_passes(self):
        case = bolus_request_test_case(samples=3, seed=3)
        report = BlackBoxOnlineTester(scheme_factory(2, seed=7)).run(case)
        assert report.passed
        assert all(verdict.passed for verdict in report.verdicts)


class TestFunctionalConformanceBaseline:
    def test_generated_code_is_functionally_conformant(self):
        chart = build_fig2_statechart()
        checker = FunctionalConformanceChecker(chart, generate_code(chart))
        report = checker.run(checker.bolus_scenario(), "bolus")
        assert report.conformant
        report = checker.run(checker.alarm_scenario(), "alarm")
        assert report.conformant

    def test_extended_chart_conformance(self):
        chart = build_extended_statechart()
        checker = FunctionalConformanceChecker(chart, generate_code(chart))
        steps = [
            FunctionalStep(advance_ticks=500),
            FunctionalStep(advance_ticks=10, events=("i-BolusReq",)),
            FunctionalStep(advance_ticks=100, events=("i-Occlusion",)),
            FunctionalStep(advance_ticks=50, events=("i-ClearAlarm",)),
        ]
        assert checker.run(steps, "occlusion").conformant

    def test_conformance_says_nothing_about_timing(self):
        """The key gap: a timing-violating scheme still passes functional checks."""
        chart = build_fig2_statechart()
        checker = FunctionalConformanceChecker(chart, generate_code(chart))
        functional = checker.run(checker.bolus_scenario(), "bolus")
        assert functional.conformant
        timing = RTestRunner(scheme_factory(3, seed=44)).run(
            bolus_request_test_case(samples=3, seed=3)
        )
        assert not timing.passed
        assert "timing not assessed" in functional.summary()

    def test_divergence_detected_for_mismatched_artifacts(self):
        """Pairing the Fig. 2 model with code generated from a different chart fails."""
        fig2 = build_fig2_statechart()
        other = build_extended_statechart()
        checker = FunctionalConformanceChecker(fig2, generate_code(other))
        report = checker.run(checker.bolus_scenario(), "mismatch")
        assert not report.conformant
