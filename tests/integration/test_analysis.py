"""Tests of the analysis helpers (statistics, tables, figure series)."""

import pytest

from repro.analysis.figures import SweepPoint, render_sweep, sweep_point
from repro.analysis.statistics import Summary, percentile, to_milliseconds, violation_rate
from repro.analysis.tables import SchemeResult, TableOne
from repro.core import RTestRunner
from repro.gpca import bolus_request_test_case, scheme_factory, scheme_name


class TestStatistics:
    def test_summary_of_known_values(self):
        summary = Summary.of([10, 20, 30, 40])
        assert summary.mean == 25
        assert summary.median == 25
        assert summary.minimum == 10 and summary.maximum == 40

    def test_summary_of_empty_is_none(self):
        assert Summary.of([]) is None
        assert Summary.of([None]) is None

    def test_summary_scaling(self):
        summary = Summary.of([1000, 3000]).scaled(0.001)
        assert summary.mean == pytest.approx(2.0)

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 50) == 5
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_violation_rate(self):
        assert violation_rate([50, 150, None], 100) == pytest.approx(2 / 3)
        assert violation_rate([], 100) == 0.0

    def test_to_milliseconds(self):
        assert to_milliseconds([1000, None, 2500]) == [1.0, None, 2.5]


class TestSweep:
    def test_sweep_point_from_report(self):
        report = RTestRunner(scheme_factory(2, seed=1)).run(bolus_request_test_case(samples=3, seed=1))
        point = sweep_point(25.0, report)
        assert point.parameter == 25.0
        assert 0.0 <= point.violation_rate <= 1.0
        assert point.max_latency_ms is not None

    def test_render_sweep(self):
        points = [
            SweepPoint(parameter=10.0, violation_rate=0.0, timeout_count=0, max_latency_ms=50.0, mean_latency_ms=40.0),
            SweepPoint(parameter=50.0, violation_rate=0.4, timeout_count=1, max_latency_ms=None, mean_latency_ms=None),
        ]
        text = render_sweep(points, "period (ms)")
        assert "period (ms)" in text
        assert "40.00%" in text


class TestTableOneEdgeCases:
    def test_empty_table(self):
        table = TableOne()
        assert table.sample_count == 0
        assert table.rows() == []
        assert "TABLE I" in table.render()

    def test_scheme_without_m_report(self):
        report = RTestRunner(scheme_factory(2, seed=1)).run(bolus_request_test_case(samples=2, seed=1))
        result = SchemeResult(2, scheme_name(2), report, m_report=None)
        table = TableOne([result])
        row = table.rows()[0]
        assert row["scheme2_input"] == "-"
        assert result.summary_row()["dominant_segment"] is None
