"""Shared fixtures for the observability-layer tests.

The expensive ingredient — an executed campaign — is computed once per
session and shared; server tests get a fresh store file seeded from it.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, table_one_spec
from repro.store import RunStore


class FakeClock:
    """A deterministic injectable monotonic source."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture(scope="session")
def table1_result():
    """One executed table1 campaign (3 runs, 2 samples), shared per session."""
    return CampaignRunner(table_one_spec(samples=2)).run()


@pytest.fixture
def seeded_store(tmp_path, table1_result):
    """A fresh store file pre-loaded with the table1 campaign snapshot."""
    store = RunStore(tmp_path / "runs.db")
    store.save_campaign(table1_result)
    yield store
    store.close()
