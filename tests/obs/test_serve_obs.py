"""The serve-side observability surface: /metrics, /progress, pagination, logging."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import REGISTRY
from repro.store import StoreServer

PROGRESS_SNAPSHOT = {
    "campaign": "table1",
    "total_runs": 3,
    "workers": 2,
    "started": 3,
    "completed": 1,
    "cached": 0,
    "failed": 0,
    "remaining": 2,
    "finished": False,
    "elapsed_s": 0.8,
    "rate_runs_per_s": 1.25,
    "eta_s": 1.6,
}


@pytest.fixture
def server(seeded_store):
    seeded_store.save_progress(PROGRESS_SNAPSHOT)
    with StoreServer(seeded_store) as running:
        yield running


def _get_raw(server: StoreServer, path: str, headers=None):
    request = urllib.request.Request(server.url + path, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as error:
        if error.code == 304:  # urllib treats Not Modified as an error
            return 304, error.headers, b""
        raise


def _get_json(server: StoreServer, path: str, headers=None):
    status, headers, body = _get_raw(server, path, headers)
    return status, headers, json.loads(body)


class TestMetricsEndpoint:
    def test_prometheus_is_the_default_format(self, server):
        _get_json(server, "/healthz")  # guarantee at least one http metric
        status, headers, body = _get_raw(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        text = body.decode("utf-8")
        assert "# TYPE http_responses_total counter" in text
        assert "# TYPE http_request_seconds histogram" in text
        assert 'http_request_seconds_bucket{endpoint="/healthz",le="+Inf"}' in text

    def test_json_format_mirrors_the_registry(self, server):
        _get_json(server, "/healthz")
        status, headers, payload = _get_json(server, "/metrics?format=json")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        families = payload["metrics"]
        assert families["http_responses_total"]["type"] == "counter"
        series = families["http_request_seconds"]["series"]
        assert any(s["labels"].get("endpoint") == "/healthz" for s in series)

    def test_unknown_format_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_raw(server, "/metrics?format=xml")
        assert excinfo.value.code == 400

    def test_scrapes_are_never_cached_stale(self, server):
        """Two scrapes straddling traffic see different counts — no memoisation."""
        _, _, first = _get_json(server, "/metrics?format=json")
        _get_json(server, "/healthz")
        _, _, second = _get_json(server, "/metrics?format=json")
        count_of = lambda payload: sum(  # noqa: E731
            series["value"]
            for series in payload["metrics"]["http_responses_total"]["series"]
        )
        assert count_of(second) > count_of(first)

    def test_request_metrics_label_collapses_dynamic_paths(self, server):
        _get_json(server, "/progress/table1")
        assert (
            REGISTRY.counter_value("http_responses_total", {"status": "200"}) > 0
        )
        _, _, payload = _get_json(server, "/metrics?format=json")
        endpoints = {
            series["labels"]["endpoint"]
            for series in payload["metrics"]["http_request_seconds"]["series"]
        }
        assert "/progress/<name>" in endpoints
        assert not any(e.startswith("/progress/table1") for e in endpoints)


class TestProgressEndpoint:
    def test_serves_the_persisted_snapshot(self, server):
        status, _, payload = _get_json(server, "/progress/table1")
        assert status == 200
        assert payload["completed"] == 1
        assert payload["eta_s"] == 1.6
        assert payload["updated_at"]

    def test_unknown_campaign_is_a_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_raw(server, "/progress/never-ran")
        assert excinfo.value.code == 404

    def test_empty_name_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_raw(server, "/progress/")
        assert excinfo.value.code == 400

    def test_live_updates_bypass_the_response_cache(self, server, seeded_store):
        _, _, before = _get_json(server, "/progress/table1")
        seeded_store.save_progress(
            {**PROGRESS_SNAPSHOT, "completed": 3, "remaining": 0, "finished": True}
        )
        _, _, after = _get_json(server, "/progress/table1")
        assert before["finished"] is False
        assert after["finished"] is True


class TestRunsPagination:
    def test_pages_partition_the_run_set(self, server):
        _, _, page_one = _get_json(server, "/runs?limit=2")
        _, _, page_two = _get_json(server, "/runs?limit=2&offset=2")
        assert page_one["total"] == page_two["total"] == 3
        assert page_one["count"] == 2 and page_two["count"] == 1
        keys = [r["key"] for r in page_one["runs"] + page_two["runs"]]
        assert len(set(keys)) == 3

    def test_system_filter_and_total(self, server):
        _, _, payload = _get_json(server, "/runs?system=gpca")
        assert payload["count"] == payload["total"] == 3
        _, _, other = _get_json(server, "/runs?system=pacemaker")
        assert other["count"] == other["total"] == 0

    def test_slowest_order_serves_timings(self, server):
        _, _, payload = _get_json(server, "/runs?order=slowest")
        elapsed = [r["timing"]["elapsed_s"] for r in payload["runs"]]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_each_page_has_its_own_etag_and_304(self, server):
        _, head_one, _ = _get_json(server, "/runs?limit=2")
        _, head_two, _ = _get_json(server, "/runs?limit=2&offset=2")
        assert head_one["ETag"] != head_two["ETag"]
        status, _, body = _get_raw(
            server, "/runs?limit=2&offset=2", headers={"If-None-Match": head_two["ETag"]}
        )
        assert status == 304 and body == b""

    @pytest.mark.parametrize(
        "query", ["limit=-1", "offset=-1", "limit=abc", "order=fastest"]
    )
    def test_bad_parameters_are_400(self, server, query):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_raw(server, f"/runs?{query}")
        assert excinfo.value.code == 400


class TestConcurrentClients:
    def test_fifty_clients_mix_telemetry_and_data_endpoints(self, server):
        paths = [
            "/metrics",
            "/metrics?format=json",
            "/progress/table1",
            "/runs?limit=2",
            "/runs?limit=2&offset=2",
        ]

        def fetch(index):
            status, _, body = _get_raw(server, paths[index % len(paths)])
            return status, body

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(fetch, range(50)))
        assert all(status == 200 for status, _ in results)
        # Same-path JSON bodies agree with each other (stable under races).
        runs_bodies = {body for i, (_, body) in enumerate(results) if i % len(paths) == 3}
        assert len(runs_bodies) == 1


class TestStructuredLogging:
    def test_verbose_server_emits_one_json_line_per_request(self, seeded_store):
        stream = io.StringIO()
        with StoreServer(seeded_store, verbose=True, log_stream=stream) as server:
            _, headers, _ = _get_json(server, "/healthz")
            status, _, _ = _get_raw(
                server, "/healthz", headers={"If-None-Match": headers["ETag"]}
            )
            assert status == 304
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(lines) == 2
        first, second = lines
        assert first == {
            "method": "GET",
            "path": "/healthz",
            "status": 200,
            "cache": "200",
            "duration_ms": first["duration_ms"],
        }
        assert first["duration_ms"] >= 0
        assert second["status"] == 304
        assert second["cache"] == "304"

    def test_quiet_server_logs_nothing(self, seeded_store):
        stream = io.StringIO()
        with StoreServer(seeded_store, verbose=False, log_stream=stream) as server:
            _get_json(server, "/healthz")
        assert stream.getvalue() == ""
