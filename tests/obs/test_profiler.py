"""``repro profile``'s engine: timeline structure, lanes, counters, CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.campaign import profile_run
from repro.campaign.spec import table_one_spec
from repro.cli import main
from repro.obs.spans import FRAMEWORK_PID, SIMULATION_PID


@pytest.fixture(scope="module")
def profiled():
    """Scheme 3 (interfered) table1 coordinate: misses deadlines, so the
    timeline exercises segments, preemptions and deadline instants."""
    return profile_run(table_one_spec(samples=2).expand()[2])


class TestTimeline:
    def test_worker_phases_on_the_framework_lane(self, profiled):
        events = profiled.timeline()["traceEvents"]
        phases = [
            e["name"] for e in events if e.get("ph") == "X" and e["pid"] == FRAMEWORK_PID
        ]
        assert phases[0] == "codegen"
        assert "build" in phases
        assert phases[-1] == "analyze"
        assert "execute" in phases

    def test_task_segments_on_the_simulation_lane(self, profiled):
        events = profiled.timeline()["traceEvents"]
        segments = [
            e for e in events if e.get("cat") == "segment" and e["pid"] == SIMULATION_PID
        ]
        assert segments
        # Simulated timestamps are integer microseconds from the virtual clock.
        assert all(float(e["ts"]).is_integer() for e in segments)
        task_names = {e["name"] for e in segments}
        assert len(task_names) >= 2  # more than one RTOS task ran

    def test_deadline_misses_are_instants(self, profiled):
        events = profiled.timeline()["traceEvents"]
        misses = [e for e in events if e.get("cat") == "deadline"]
        assert misses  # scheme 3 under interference misses deadlines
        assert all(e["ph"] == "i" for e in misses)

    def test_preempted_segments_are_flagged(self, profiled):
        events = profiled.timeline()["traceEvents"]
        preempted = [
            e
            for e in events
            if e.get("cat") == "segment" and e.get("args", {}).get("preempted")
        ]
        assert preempted  # interference preempts the control task

    def test_rerendered_simulation_lane_is_deterministic(self):
        spec = table_one_spec(samples=2).expand()[2]
        first = profile_run(spec).timeline()["traceEvents"]
        second = profile_run(spec).timeline()["traceEvents"]
        sim_first = [e for e in first if e.get("pid") == SIMULATION_PID]
        sim_second = [e for e in second if e.get("pid") == SIMULATION_PID]
        assert sim_first == sim_second

    def test_self_time_table_lists_every_phase(self, profiled):
        table = profiled.self_time_table()
        for phase in ("codegen", "build", "execute", "analyze"):
            assert phase in table


class TestProfileCLI:
    def test_profile_command_writes_a_loadable_timeline(self, tmp_path, capsys):
        timeline = tmp_path / "timeline.json"
        exit_code = main(
            ["profile", "--index", "0", "--samples", "2", "--timeline", str(timeline)]
        )
        assert exit_code == 0
        document = json.loads(timeline.read_text(encoding="utf-8"))
        assert document["displayTimeUnit"] == "ms"
        assert any(e["name"] == "execute" for e in document["traceEvents"])
        out = capsys.readouterr().out
        assert "phase" in out and "self (ms)" in out
        assert "engine counters:" in out

    def test_profile_list_enumerates_coordinates(self, capsys):
        assert main(["profile", "--list"]) == 0
        out = capsys.readouterr().out
        assert "3 coordinates" in out

    def test_profile_rejects_out_of_range_index(self, capsys):
        assert main(["profile", "--index", "99"]) == 2
        assert "outside grid" in capsys.readouterr().err
