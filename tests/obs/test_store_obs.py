"""Store-side observability: timing rows, progress snapshots, pagination, migration."""

from __future__ import annotations

import sqlite3

import pytest

from repro.store import RunStore

#: The runs-table layout as it shipped before the observability PR — no
#: ``system`` column, no ``run_timings`` / ``campaign_progress`` tables.
_OLD_SCHEMA = """
CREATE TABLE store_meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
INSERT INTO store_meta VALUES ('schema_version', '1');
CREATE TABLE runs (
    record_id         TEXT PRIMARY KEY,
    coord_key         TEXT NOT NULL,
    model             TEXT NOT NULL,
    model_fingerprint TEXT NOT NULL,
    scheme            INTEGER NOT NULL,
    case_name         TEXT NOT NULL,
    samples           INTEGER NOT NULL,
    sut_seed          INTEGER NOT NULL,
    case_seed         INTEGER NOT NULL,
    fault_plan        TEXT,
    mutant            TEXT,
    passed            INTEGER NOT NULL,
    violations        INTEGER NOT NULL,
    timeouts          INTEGER NOT NULL,
    spec_json         TEXT NOT NULL,
    r_json            TEXT NOT NULL,
    m_json            TEXT,
    created_at        TEXT NOT NULL
);
CREATE INDEX idx_runs_coord ON runs (coord_key);
CREATE INDEX idx_runs_shape ON runs (scheme, case_name, model);
CREATE TABLE campaigns (
    campaign_id   TEXT PRIMARY KEY,
    name          TEXT NOT NULL,
    size          INTEGER NOT NULL,
    spec_json     TEXT NOT NULL,
    run_keys_json TEXT NOT NULL,
    created_at    TEXT NOT NULL
);
CREATE INDEX idx_campaigns_name ON campaigns (name);
"""


class TestTimingRows:
    def test_run_rows_carry_the_timing_profile(self, seeded_store):
        rows = seeded_store.run_rows()
        assert len(rows) == 3
        for row in rows:
            assert row["system"] == "gpca"
            timing = row["timing"]
            assert timing["elapsed_s"] > 0
            for phase in ("codegen_s", "execute_s", "analyze_s"):
                assert timing[phase] >= 0

    def test_slowest_order_sorts_by_wall_clock(self, seeded_store):
        rows = seeded_store.run_rows(order="slowest")
        elapsed = [row["timing"]["elapsed_s"] for row in rows]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_unknown_order_is_rejected(self, seeded_store):
        with pytest.raises(ValueError):
            seeded_store.run_rows(order="fastest")

    def test_limit_offset_paginate_in_order(self, seeded_store):
        everything = seeded_store.run_rows()
        page_one = seeded_store.run_rows(limit=2)
        page_two = seeded_store.run_rows(limit=2, offset=2)
        assert [r["key"] for r in page_one + page_two] == [r["key"] for r in everything]
        # offset without limit still works (LIMIT -1 path).
        assert seeded_store.run_rows(offset=1) == everything[1:]

    def test_run_count_honours_filters(self, seeded_store):
        assert seeded_store.run_count() == 3
        assert seeded_store.run_count(system="gpca") == 3
        assert seeded_store.run_count(system="pacemaker") == 0
        assert seeded_store.run_count(scheme=2) == 1

    def test_timing_rows_do_not_move_the_state_token(self, seeded_store, table1_result):
        token = seeded_store.state_token()
        # Re-saving identical records (timings included) must not invalidate
        # every dashboard's ETags.
        seeded_store.put_records(table1_result.records)
        assert seeded_store.state_token() == token


class TestProgressPersistence:
    SNAPSHOT = {
        "campaign": "table1",
        "total_runs": 3,
        "workers": 1,
        "started": 3,
        "completed": 2,
        "cached": 0,
        "failed": 0,
        "remaining": 1,
        "finished": False,
        "elapsed_s": 1.5,
        "rate_runs_per_s": 1.333,
        "eta_s": 0.75,
    }

    def test_round_trip_adds_updated_at(self, seeded_store):
        seeded_store.save_progress(self.SNAPSHOT)
        loaded = seeded_store.load_progress("table1")
        assert loaded.pop("updated_at")
        assert loaded == self.SNAPSHOT

    def test_latest_write_wins(self, seeded_store):
        seeded_store.save_progress(self.SNAPSHOT)
        seeded_store.save_progress({**self.SNAPSHOT, "completed": 3, "finished": True})
        assert seeded_store.load_progress("table1")["finished"] is True

    def test_missing_campaign_loads_none(self, seeded_store):
        assert seeded_store.load_progress("never-ran") is None

    def test_progress_writes_do_not_move_the_state_token(self, seeded_store):
        token = seeded_store.state_token()
        seeded_store.save_progress(self.SNAPSHOT)
        assert seeded_store.state_token() == token


class TestSchemaMigration:
    def test_pre_observability_store_is_upgraded_in_place(self, tmp_path, table1_result):
        path = tmp_path / "old.db"
        connection = sqlite3.connect(path)
        connection.executescript(_OLD_SCHEMA)
        connection.close()

        store = RunStore(path)
        try:
            # The system column and the two new tables exist now.
            store.put_records(table1_result.records)
            rows = store.run_rows(order="slowest")
            assert {row["system"] for row in rows} == {"gpca"}
            assert all("timing" in row for row in rows)
            store.save_progress(TestProgressPersistence.SNAPSHOT)
            assert store.load_progress("table1")["completed"] == 2
        finally:
            store.close()

    def test_reopening_a_migrated_store_is_idempotent(self, tmp_path, table1_result):
        path = tmp_path / "old.db"
        connection = sqlite3.connect(path)
        connection.executescript(_OLD_SCHEMA)
        connection.close()
        for _ in range(2):
            store = RunStore(path)
            store.put_records(table1_result.records)
            store.close()
        store = RunStore(path)
        try:
            assert store.run_count() == 3
        finally:
            store.close()
