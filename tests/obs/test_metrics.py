"""Counters, gauges, fixed-bucket histograms and the two registry renderings."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import counters_from


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative_increments(self, registry):
        with pytest.raises(ValueError):
            registry.counter("events_total").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("in_flight")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 2.0

    def test_histogram_places_observations_in_fixed_buckets(self, registry):
        histogram = registry.histogram("latency", edges=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        # Cumulative counts, +Inf last — Prometheus semantics.
        assert histogram.cumulative_buckets() == [
            ("0.1", 1),
            ("1", 3),
            ("10", 4),
            ("+Inf", 5),
        ]

    def test_histogram_rejects_bad_edges(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("empty", edges=())
        with pytest.raises(ValueError):
            registry.histogram("unsorted", edges=(1.0, 0.5))


class TestRegistry:
    def test_same_address_returns_same_instrument(self, registry):
        assert registry.counter("hits") is registry.counter("hits")

    def test_label_order_is_canonical(self, registry):
        first = registry.counter("hits", labels={"a": 1, "b": 2})
        second = registry.counter("hits", labels={"b": 2, "a": 1})
        assert first is second

    def test_distinct_labels_are_distinct_series(self, registry):
        registry.counter("hits", labels={"status": "200"}).inc()
        registry.counter("hits", labels={"status": "304"}).inc(2)
        assert registry.counter_value("hits", {"status": "200"}) == 1
        assert registry.counter_value("hits", {"status": "304"}) == 2

    def test_kind_conflicts_are_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_counter_value_defaults_to_zero(self, registry):
        assert registry.counter_value("never_created") == 0

    def test_reset_drops_everything(self, registry):
        registry.counter("hits").inc()
        registry.reset()
        assert registry.counter_value("hits") == 0
        assert registry.to_dict() == {"metrics": {}}

    def test_counters_from_folds_pairs_and_skips_zeros(self, registry):
        counters_from(registry, [("a_total", 3), ("b_total", 0), ("a_total", 2)])
        assert registry.counter_value("a_total") == 5
        assert registry.counter_value("b_total") == 0
        # The zero pair never created the series at all.
        assert "b_total" not in registry.to_dict()["metrics"]


class TestRendering:
    def test_to_dict_is_json_shaped(self, registry):
        registry.counter("hits", labels={"route": "/runs"}, help="requests").inc(2)
        registry.histogram("lat", edges=(0.5,)).observe(0.1)
        payload = json.loads(json.dumps(registry.to_dict()))
        hits = payload["metrics"]["hits"]
        assert hits["type"] == "counter"
        assert hits["help"] == "requests"
        assert hits["series"] == [{"labels": {"route": "/runs"}, "value": 2}]
        lat = payload["metrics"]["lat"]["series"][0]
        assert lat["count"] == 1
        assert lat["buckets"][-1] == {"le": "+Inf", "count": 1}

    def test_prometheus_exposition_format(self, registry):
        registry.counter("hits", labels={"route": "/runs"}, help="requests").inc(2)
        registry.histogram("lat", edges=(0.5, 1.0)).observe(0.1)
        text = registry.render_prometheus()
        assert "# HELP hits requests" in text
        assert "# TYPE hits counter" in text
        assert 'hits{route="/runs"} 2' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.1" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_label_values_are_escaped(self, registry):
        registry.counter("odd", labels={"v": 'a"b\\c\nd'}).inc()
        text = registry.render_prometheus()
        assert 'odd{v="a\\"b\\\\c\\nd"} 1' in text

    def test_rendering_is_deterministic_under_creation_order(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.counter("a").inc()
        forward.counter("b").inc()
        backward.counter("b").inc()
        backward.counter("a").inc()
        assert forward.render_prometheus() == backward.render_prometheus()
        assert forward.to_dict() == backward.to_dict()
