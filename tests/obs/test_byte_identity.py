"""Zero perturbation, pinned: telemetry off / on / on-with-spans are byte-identical.

The observability layer's hard constraint is that enabling any of it —
metrics pulls, progress tracking, span collection with the scheduler
observer attached — changes no verdict, no trace, no RNG draw and no store
coordinate.  These tests pin that across all three registered system packs.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, profile_run
from repro.campaign.spec import CampaignSpec, CasePoint, SchemePoint, table_one_spec
from repro.campaign.worker import execute_run
from repro.obs import MetricsRegistry, Telemetry

#: One representative coordinate per registered system pack.
PACK_CASES = [
    ("gpca", "bolus-request"),
    ("pacemaker", "sense-inhibit"),
    ("cruise", "aeb-stop"),
]


def pack_spec(system: str, case: str) -> CampaignSpec:
    return CampaignSpec(
        name=f"obs-{system}",
        schemes=(SchemePoint(2), SchemePoint(3)),
        cases=(CasePoint(case, samples=2, system=system),),
    )


class TestRunLevelIdentity:
    @pytest.mark.parametrize(("system", "case"), PACK_CASES)
    def test_profiled_record_matches_plain_execution(self, system, case):
        """profile_run (spans + scheduler observer) vs execute_run, byte for byte."""
        for spec in pack_spec(system, case).expand():
            plain = execute_run(spec)
            profiled = profile_run(spec)
            assert json.dumps(profiled.record.to_dict(), sort_keys=True) == json.dumps(
                plain.to_dict(), sort_keys=True
            ), f"{system}/{spec.label}: span collection perturbed the run"

    @pytest.mark.parametrize(("system", "case"), PACK_CASES)
    def test_profiler_observed_the_simulation(self, system, case):
        """The identical record came *with* telemetry: segments + counters."""
        spec = pack_spec(system, case).expand()[0]
        profiled = profile_run(spec)
        events = profiled.tracer.to_chrome_trace()["traceEvents"]
        segments = [e for e in events if e.get("cat") == "segment"]
        assert segments, f"{system}: no task segments collected"
        assert profiled.counters["kernel_events_processed"] > 0
        assert profiled.counters["scheduler_dispatch_rounds"] > 0


class TestCampaignLevelIdentity:
    def test_runner_aggregate_identical_off_on_and_with_spans(self, table1_result):
        """The canonical campaign payload is identical for all telemetry modes."""
        spec = table_one_spec(samples=2)
        baseline = table1_result.to_json()

        enabled = CampaignRunner(spec, telemetry=Telemetry(MetricsRegistry())).run()
        assert enabled.to_json() == baseline

        with_spans = CampaignRunner(
            spec, telemetry=Telemetry(MetricsRegistry(), spans=True)
        ).run()
        assert with_spans.to_json() == baseline

    def test_enabled_runner_collected_campaign_counters(self):
        registry = MetricsRegistry()
        spec = table_one_spec(samples=2)
        runner = CampaignRunner(spec, telemetry=Telemetry(registry))
        runner.run()
        assert registry.counter_value("campaign_runs_completed") == 3
        assert registry.counter_value("campaign_runs_cached") == 0
        assert registry.histogram("campaign_wall_seconds").count == 1
        assert runner.progress is not None
        assert runner.progress.snapshot()["finished"] is True
