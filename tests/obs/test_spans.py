"""Span tracing: phases, lanes, Chrome-trace rendering, self-time accounting."""

from __future__ import annotations

import json

from repro.obs import SpanTracer, render_self_time_table
from repro.obs.spans import FRAMEWORK_PID, SIMULATION_PID


class TestFrameworkLane:
    def test_phase_records_injected_monotonic_interval(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        with tracer.phase("execute"):
            fake_clock.advance(0.25)
        (span,) = tracer.spans
        assert span.name == "execute"
        assert span.pid == FRAMEWORK_PID
        assert span.ts_us == 0.0
        assert span.dur_us == 250_000.0

    def test_phase_args_land_on_the_event(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        with tracer.phase("codegen", args={"scheme": 2}):
            fake_clock.advance(0.01)
        assert tracer.spans[0].to_event()["args"] == {"scheme": 2}

    def test_begin_end_matches_the_context_manager(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        started = tracer.begin()
        fake_clock.advance(1.0)
        span = tracer.end("leg", started)
        assert span.dur_us == 1_000_000.0


class TestSimulationLane:
    def test_sim_span_and_instant_use_caller_timestamps(self):
        tracer = SpanTracer(lambda: 0.0)
        tracer.sim_span("control", 4000, 4600, tid=1)
        tracer.sim_instant("deadline miss", 9000, tid=1)
        events = tracer.to_chrome_trace()["traceEvents"]
        span = next(e for e in events if e["name"] == "control")
        assert (span["pid"], span["ts"], span["dur"]) == (SIMULATION_PID, 4000, 600)
        miss = next(e for e in events if e["name"] == "deadline miss")
        assert (miss["ph"], miss["ts"]) == ("i", 9000)


class TestChromeTrace:
    def test_document_shape_and_lane_metadata(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        with tracer.phase("execute"):
            fake_clock.advance(0.1)
        tracer.sim_span("task", 0, 100, tid=3)
        tracer.name_thread(SIMULATION_PID, 3, "controller")
        document = tracer.to_chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        process_names = {
            e["pid"]: e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert process_names == {
            FRAMEWORK_PID: "framework (wall clock)",
            SIMULATION_PID: "simulation (virtual time)",
        }
        thread_names = [e for e in events if e["name"] == "thread_name"]
        assert {"name": "controller"} in [e["args"] for e in thread_names]

    def test_metadata_only_for_used_lanes(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        with tracer.phase("only framework"):
            fake_clock.advance(0.1)
        events = tracer.to_chrome_trace()["traceEvents"]
        pids = {e["pid"] for e in events if e["name"] == "process_name"}
        assert pids == {FRAMEWORK_PID}

    def test_write_timeline_round_trips(self, fake_clock, tmp_path):
        tracer = SpanTracer(fake_clock)
        with tracer.phase("execute"):
            fake_clock.advance(0.1)
        path = tmp_path / "timeline.json"
        tracer.write_timeline(path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document == tracer.to_chrome_trace()


class TestSelfTimes:
    def test_nested_children_are_subtracted_from_the_parent(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        # Powers of two keep the fake clock's floats exactly representable.
        with tracer.phase("execute"):
            fake_clock.advance(0.25)
            with tracer.phase("build"):
                fake_clock.advance(0.5)
            fake_clock.advance(0.25)
        table = tracer.self_times()
        assert table["execute"]["total_us"] == 1_000_000.0
        assert table["execute"]["self_us"] == 500_000.0
        assert table["build"]["self_us"] == 500_000.0

    def test_sibling_spans_accumulate_per_name(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        for _ in range(3):
            with tracer.phase("build"):
                fake_clock.advance(0.25)
        row = tracer.self_times()["build"]
        assert row["count"] == 3
        assert row["total_us"] == 750_000.0

    def test_simulation_spans_never_enter_the_table(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        tracer.sim_span("task", 0, 100)
        assert tracer.self_times() == {}

    def test_rendered_table_sorts_by_self_time(self, fake_clock):
        tracer = SpanTracer(fake_clock)
        with tracer.phase("fast"):
            fake_clock.advance(0.01)
        with tracer.phase("slow"):
            fake_clock.advance(1.0)
        text = render_self_time_table(tracer.self_times())
        lines = text.splitlines()
        assert lines[0].startswith("phase")
        assert lines[2].startswith("slow")
        assert lines[3].startswith("fast")
