"""The telemetry facade, the null sink, and the campaign-progress accumulator."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    CampaignProgress,
    MetricsRegistry,
    Telemetry,
)


class TestTelemetryFacade:
    @pytest.fixture
    def registry(self):
        return MetricsRegistry()

    def test_count_gauge_observe_land_in_the_registry(self, registry):
        telemetry = Telemetry(registry)
        telemetry.count("runs_total", 2)
        telemetry.count("http_total", status="200")
        telemetry.gauge("in_flight", 4.0)
        telemetry.observe("latency", 0.2)
        assert registry.counter_value("runs_total") == 2
        assert registry.counter_value("http_total", {"status": "200"}) == 1
        assert registry.gauge("in_flight").value == 4.0
        assert registry.histogram("latency").count == 1

    def test_pull_counters_folds_engine_snapshots(self, registry):
        telemetry = Telemetry(registry)
        telemetry.pull_counters({"kernel_events": 100, "idle": 0}, prefix="sim_")
        assert registry.counter_value("sim_kernel_events") == 100
        assert registry.counter_value("sim_idle") == 0

    def test_phase_without_tracer_is_the_shared_null_context(self, registry):
        telemetry = Telemetry(registry)
        assert telemetry.tracer is None
        # One process-wide singleton: no per-call allocation on the disabled path.
        assert telemetry.phase("a") is telemetry.phase("b")
        with telemetry.phase("execute"):
            pass

    def test_spans_mode_records_phases(self, registry, fake_clock):
        telemetry = Telemetry(registry, spans=True, monotonic=fake_clock)
        with telemetry.phase("execute", scheme=2):
            fake_clock.advance(0.5)
        (span,) = telemetry.tracer.spans
        assert span.name == "execute"
        assert span.args == {"scheme": 2}
        assert span.dur_us == 500_000.0


class TestNullSink:
    def test_flags_and_noops(self):
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry(MetricsRegistry()).enabled is True
        NULL_TELEMETRY.count("anything", 5)
        NULL_TELEMETRY.gauge("anything", 1.0)
        NULL_TELEMETRY.observe("anything", 1.0)
        NULL_TELEMETRY.pull_counters({"a": 1})

    def test_phase_returns_one_shared_context(self):
        first = NULL_TELEMETRY.phase("a")
        second = NULL_TELEMETRY.phase("b", key="value")
        assert first is second
        with first:
            pass

    def test_null_sink_has_no_per_instance_state(self):
        assert NULL_TELEMETRY.__slots__ == ()


class TestCampaignProgress:
    def test_counts_and_remaining(self, fake_clock):
        progress = CampaignProgress("table1", 10, monotonic=fake_clock, workers=2)
        progress.record_cached(3)
        progress.record_started(7)
        progress.record_completed(4)
        progress.record_failed()
        assert progress.done == 8
        assert progress.remaining == 2

    def test_rate_excludes_cached_runs(self, fake_clock):
        progress = CampaignProgress("grid", 10, monotonic=fake_clock)
        progress.record_cached(5)
        progress.record_completed(4)
        fake_clock.advance(2.0)
        assert progress.rate_runs_per_s() == pytest.approx(2.0)

    def test_eta_from_the_execution_rate(self, fake_clock):
        progress = CampaignProgress("grid", 10, monotonic=fake_clock)
        progress.record_completed(4)
        fake_clock.advance(2.0)
        # 6 remaining at 2 runs/s.
        assert progress.eta_s() == pytest.approx(3.0)

    def test_eta_is_none_before_any_signal(self, fake_clock):
        progress = CampaignProgress("grid", 10, monotonic=fake_clock)
        fake_clock.advance(1.0)
        assert progress.eta_s() is None

    def test_eta_is_zero_when_done(self, fake_clock):
        progress = CampaignProgress("grid", 2, monotonic=fake_clock)
        progress.record_completed(2)
        fake_clock.advance(1.0)
        assert progress.eta_s() == 0.0

    def test_finish_freezes_elapsed_time(self, fake_clock):
        progress = CampaignProgress("grid", 1, monotonic=fake_clock)
        progress.record_completed()
        fake_clock.advance(2.0)
        progress.finish()
        fake_clock.advance(100.0)
        assert progress.elapsed_s() == pytest.approx(2.0)

    def test_snapshot_is_json_shaped_and_complete(self, fake_clock):
        progress = CampaignProgress("table1", 4, monotonic=fake_clock, workers=3)
        progress.record_started(4)
        progress.record_completed(2)
        fake_clock.advance(1.0)
        snapshot = progress.snapshot()
        assert snapshot == {
            "campaign": "table1",
            "total_runs": 4,
            "workers": 3,
            "started": 4,
            "completed": 2,
            "cached": 0,
            "failed": 0,
            "remaining": 2,
            "finished": False,
            "elapsed_s": 1.0,
            "rate_runs_per_s": 2.0,
            "eta_s": 1.0,
        }
