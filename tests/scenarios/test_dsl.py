"""Tests of the scenario DSL: compilation, determinism, legacy equivalence."""

import json

import pytest

from repro.core.test_generation import RTestGenerator, TestGenerationConfig
from repro.gpca import (
    alarm_clear_program,
    alarm_clear_test_case,
    bolus_request_program,
    bolus_request_test_case,
    empty_reservoir_alarm_program,
    empty_reservoir_alarm_test_case,
    empty_reservoir_stop_program,
    empty_reservoir_stop_test_case,
    req1_bolus_start,
    req2_empty_reservoir_alarm,
)
from repro.platform.kernel.time import ms, seconds
from repro.scenarios import (
    ROLE_SETUP,
    ROLE_TEARDOWN,
    CycleSpacing,
    ScenarioProgram,
    StimulusPattern,
    StimulusStep,
)


class TestLegacyScenarioEquivalence:
    """The DSL programs reproduce the hand-written builders byte for byte.

    The expected schedules are pinned as literals (not recomputed through the
    delegating builders), so a regression in either the DSL or the builders
    is caught against ground truth.
    """

    def test_bolus_request_randomized_matches_pinned_schedule(self):
        case = bolus_request_program(4).compile(seed=0)
        assert case == bolus_request_test_case(4, seed=0)
        assert case.name == "bolus-request"
        assert [s.variable for s in case.stimuli] == ["m-BolusReq"] * 4
        # Pinned: RandomSource(0).stream("rtest") inter-arrival draws.
        assert case.stimulus_times() == [150_000, 5_457_656, 10_504_287, 15_900_905]

    def test_bolus_request_uniform_matches_legacy(self):
        program = bolus_request_program(5, randomized=False)
        case = program.compile(seed=3)
        assert case == bolus_request_test_case(5, seed=3, randomized=False)
        assert case.name == "bolus-request-uniform"
        gaps = {b - a for a, b in zip(case.stimulus_times(), case.stimulus_times()[1:])}
        assert gaps == {ms(4600)}

    def test_empty_reservoir_programs_match_legacy(self):
        for program_builder, case_builder in [
            (empty_reservoir_alarm_program, empty_reservoir_alarm_test_case),
            (empty_reservoir_stop_program, empty_reservoir_stop_test_case),
        ]:
            for samples in (1, 3, 5):
                assert program_builder(samples).compile() == case_builder(samples)

    def test_empty_reservoir_alarm_pinned_first_cycle(self):
        case = empty_reservoir_alarm_program(2).compile()
        assert [(s.at_us, s.variable) for s in case.stimuli[:4]] == [
            (ms(150), "m-BolusReq"),
            (ms(150) + seconds(1), "m-EmptyReservoir"),
            (ms(150) + seconds(3), "m-ClearAlarm"),
            (ms(150) + seconds(4), "m-ReservoirRefill"),
        ]
        assert case.stimuli[4].at_us == ms(150) + seconds(8)

    def test_alarm_clear_program_matches_legacy(self):
        for samples in (1, 2, 5):
            assert alarm_clear_program(samples).compile() == alarm_clear_test_case(samples)


class TestCompilation:
    def test_same_seed_compiles_identically(self):
        program = bolus_request_program(8)
        assert program.compile(seed=42) == program.compile(seed=42)

    def test_different_seed_changes_jittered_schedule(self):
        program = bolus_request_program(8)
        assert program.compile(seed=1).stimulus_times() != program.compile(seed=2).stimulus_times()

    def test_fixed_spacing_ignores_seed(self):
        program = empty_reservoir_alarm_program(3)
        assert program.compile(seed=1) == program.compile(seed=99)

    def test_pure_program_lowers_through_core_generator(self):
        requirement = req1_bolus_start()
        program = bolus_request_program(6, requirement=requirement)
        generator = RTestGenerator(
            requirement,
            TestGenerationConfig(
                sample_count=6,
                start_offset_us=ms(150),
                min_separation_us=ms(4600),
                max_separation_us=ms(5500),
                seed=17,
            ),
        )
        assert program.compile(seed=17) == generator.randomized(name="bolus-request")

    def test_general_path_orders_interleaved_steps(self):
        program = ScenarioProgram(
            name="interleaved",
            requirement=req2_empty_reservoir_alarm(),
            spacing=CycleSpacing(seconds(2)),
            samples=2,
            start_offset_us=0,
            setup=(StimulusStep("m-BolusReq", ms(500), ROLE_SETUP),),
            stimulus=StimulusPattern(offset_us=ms(100)),
            teardown=(StimulusStep("m-ReservoirRefill", seconds(3), ROLE_TEARDOWN),),
        )
        times = program.compile().stimulus_times()
        assert times == sorted(times)

    def test_burst_pattern_emits_gap_separated_measured_stimuli(self):
        program = ScenarioProgram(
            name="burst",
            requirement=req2_empty_reservoir_alarm(),
            spacing=CycleSpacing(seconds(5)),
            samples=2,
            stimulus=StimulusPattern(burst=3, burst_gap_us=ms(400)),
        )
        case = program.compile()
        assert case.sample_count == 6
        times = case.stimulus_times()
        assert times[1] - times[0] == ms(400) and times[2] - times[1] == ms(400)

    def test_with_samples_recompiles_to_new_count(self):
        program = empty_reservoir_alarm_program(2)
        assert program.with_samples(4).compile().sample_count == 4 * 4


class TestValidation:
    def test_rejects_burst_gap_below_requirement_separation(self):
        with pytest.raises(ValueError, match="minimum stimulus separation"):
            ScenarioProgram(
                name="bad",
                requirement=req1_bolus_start(),
                spacing=CycleSpacing(seconds(10)),
                stimulus=StimulusPattern(burst=2, burst_gap_us=ms(100)),
            )

    def test_rejects_spacing_below_requirement_separation(self):
        with pytest.raises(ValueError, match="minimum stimulus separation"):
            ScenarioProgram(
                name="bad",
                requirement=req1_bolus_start(),
                spacing=CycleSpacing(ms(500)),
            )

    def test_rejects_step_on_measured_variable(self):
        with pytest.raises(ValueError, match="collide"):
            ScenarioProgram(
                name="bad",
                requirement=req2_empty_reservoir_alarm(),
                spacing=CycleSpacing(seconds(5)),
                setup=(StimulusStep("m-EmptyReservoir", 0),),
            )

    def test_rejects_inverted_spacing_and_bad_pattern(self):
        with pytest.raises(ValueError):
            CycleSpacing(seconds(2), seconds(1))
        with pytest.raises(ValueError):
            StimulusPattern(burst=0)
        with pytest.raises(ValueError):
            StimulusStep("m-X", -1)


class TestCanonicalEncoding:
    def test_program_round_trips_through_dict(self):
        for program in [
            bolus_request_program(7),
            empty_reservoir_alarm_program(3),
            alarm_clear_program(2),
        ]:
            payload = json.loads(json.dumps(program.to_dict()))
            restored = ScenarioProgram.from_dict(payload)
            assert restored == program
            assert restored.compile(seed=5) == program.compile(seed=5)
