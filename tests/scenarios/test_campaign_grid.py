"""Tests of scenario programs as campaign grid axes."""

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CasePoint,
    preset_spec,
    scenario_grid_spec,
)
from repro.campaign.spec import EXTENDED_MODEL_SHIFT_US
from repro.gpca import bolus_request_program, empty_reservoir_alarm_program


class TestCasePointPrograms:
    def test_for_program_builds_consistent_point(self):
        program = empty_reservoir_alarm_program(3)
        point = CasePoint.for_program(program)
        assert point.case == program.name
        assert point.samples == 3
        assert point.program is program

    def test_rejects_mismatched_name(self):
        program = bolus_request_program(2)
        with pytest.raises(ValueError, match="does not match"):
            CasePoint(case="wrong-name", samples=2, program=program)

    def test_named_point_still_validated_against_registry(self):
        with pytest.raises(ValueError, match="unknown campaign scenario"):
            CasePoint(case="no-such-scenario")


class TestScenarioGrid:
    def test_grid_is_seed_deterministic(self):
        a = scenario_grid_spec(count=3, base_seed=5)
        b = scenario_grid_spec(count=3, base_seed=5)
        assert a == b
        assert a.to_dict() == b.to_dict()
        assert scenario_grid_spec(count=3, base_seed=6) != a

    def test_preset_routes_samples_and_seed(self):
        spec = preset_spec("scenarios", samples=2, seed=9)
        assert spec.name == "scenarios"
        assert spec.base_seed == 9
        assert all(point.samples == 2 for point in spec.cases)
        assert spec.size == 3 * len(spec.cases)

    def test_spec_dict_is_json_serializable(self):
        payload = json.dumps(scenario_grid_spec(count=2).to_dict())
        assert "gen-" in payload

    def test_run_spec_regenerates_program_schedule(self):
        spec = scenario_grid_spec(count=2, samples=2)
        runs = spec.expand()
        assert all(run.program is not None for run in runs)
        for run in runs:
            case = run.test_case()
            assert case.name == run.case
            assert case == run.test_case()  # deterministic regeneration

    def test_extended_model_shifts_program_schedules(self):
        spec = scenario_grid_spec(count=1, samples=2)
        run = spec.expand()[0]
        shifted = dataclasses.replace(run, model="extended")
        base_times = run.test_case().stimulus_times()
        shifted_times = shifted.test_case().stimulus_times()
        assert shifted_times == [t + EXTENDED_MODEL_SHIFT_US for t in base_times]


@pytest.mark.slow
class TestScenarioCampaignExecution:
    def test_parallel_aggregate_matches_serial(self):
        spec = scenario_grid_spec(count=2, samples=2)
        serial = CampaignRunner(spec, workers=1).run()
        runner = CampaignRunner(spec, workers=2)
        parallel = runner.run()
        if runner.fell_back_to_serial:
            pytest.skip(f"process pool unavailable: {runner.fallback_reason}")
        assert serial.to_json() == parallel.to_json()
