"""Tests of the coverage-guided explorer and the ``repro explore`` CLI."""

import json

import pytest

from repro.campaign import ArtifactCache
from repro.cli import main
from repro.gpca import build_scheme_system, gpca_scenario_space
from repro.scenarios import CoverageGuidedExplorer


@pytest.fixture(scope="module")
def fig2_artifacts_cached():
    return ArtifactCache().artifacts_for_model("fig2")


def build_explorer(artifacts, seed=0):
    def factory():
        return build_scheme_system(1, seed=11, artifacts=artifacts)

    return CoverageGuidedExplorer(
        gpca_scenario_space(), factory, artifacts.code_model, seed=seed
    )


class TestCoverageGuidedExplorer:
    def test_exploration_is_seed_deterministic(self, fig2_artifacts_cached):
        first = build_explorer(fig2_artifacts_cached, seed=0).explore(6)
        second = build_explorer(fig2_artifacts_cached, seed=0).explore(6)
        assert first.summary() == second.summary()
        assert first.to_dict() == second.to_dict()

    def test_coverage_ratio_is_monotonic(self, fig2_artifacts_cached):
        report = build_explorer(fig2_artifacts_cached, seed=0).explore(8)
        ratios = [episode.transition_ratio_after for episode in report.episodes]
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))
        assert report.transition_coverage.ratio == ratios[-1] > 0.0

    def test_productive_programs_are_mutated(self, fig2_artifacts_cached):
        """Once a program uncovers transitions, later episodes exploit it."""
        report = build_explorer(fig2_artifacts_cached, seed=0).explore(8)
        assert report.productive_episodes
        assert any(episode.source == "mutation" for episode in report.episodes)

    def test_new_transitions_are_disjoint_across_episodes(self, fig2_artifacts_cached):
        report = build_explorer(fig2_artifacts_cached, seed=0).explore(8)
        seen = set()
        for episode in report.episodes:
            gained = set(episode.new_transitions)
            assert not gained & seen
            seen |= gained
        assert seen == set(report.transition_coverage.covered)

    def test_plateau_forces_rich_fresh_sampling(self, fig2_artifacts_cached):
        """After a dry streak, picks become structurally rich fresh draws."""
        report = build_explorer(fig2_artifacts_cached, seed=0).explore(24)
        rich = [episode for episode in report.episodes if episode.source == "rich"]
        assert rich, "exploration never hit the plateau path"
        for episode in rich:
            assert episode.program.setup and episode.program.teardown
        # The rich draws are what complete fig2 transition coverage at seed 0.
        assert report.transition_coverage.ratio == 1.0

    def test_report_dict_is_json_serializable(self, fig2_artifacts_cached):
        report = build_explorer(fig2_artifacts_cached, seed=1).explore(4)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["seed"] == 1
        assert len(payload["episodes"]) == 4
        assert 0.0 <= payload["transition_coverage"]["ratio"] <= 1.0


class TestExploreCommand:
    def test_explore_emits_coverage_summary(self, capsys):
        assert main(["explore", "--seed", "0", "--episodes", "4"]) == 0
        output = capsys.readouterr().out
        assert "transition coverage" in output
        assert "state coverage" in output
        assert "episode  0" in output

    def test_explore_is_deterministic(self, capsys):
        assert main(["explore", "--seed", "0", "--episodes", "4"]) == 0
        first = capsys.readouterr().out
        assert main(["explore", "--seed", "0", "--episodes", "4"]) == 0
        assert capsys.readouterr().out == first

    def test_explore_writes_json_report(self, tmp_path, capsys):
        target = tmp_path / "explore.json"
        assert main(["explore", "--episodes", "3", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert len(payload["episodes"]) == 3

    def test_explore_rejects_nonpositive_episodes(self, capsys):
        assert main(["explore", "--episodes", "0"]) == 2
