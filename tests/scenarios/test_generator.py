"""Tests of the scenario space and the seeded sampler."""

import pytest

from repro.gpca import gpca_scenario_space, req1_bolus_start
from repro.platform.kernel.time import ms
from repro.scenarios import ScenarioSampler, ScenarioSpace


def measured_times(case):
    """Timestamps of the measured stimuli of a compiled case."""
    variable = case.requirement.stimulus.variable
    return [s.at_us for s in case.stimuli if s.variable == variable]


class TestScenarioSpace:
    def test_gpca_space_covers_all_requirements(self):
        space = gpca_scenario_space()
        assert sorted(r.requirement_id for r in space.requirements) == [
            "REQ1",
            "REQ2",
            "REQ3",
            "REQ4",
        ]

    def test_rejects_empty_requirements_and_inverted_ranges(self):
        with pytest.raises(ValueError, match="at least one requirement"):
            ScenarioSpace(requirements=(), setup_variables=(), teardown_variables=())
        with pytest.raises(ValueError, match="inverted"):
            ScenarioSpace(
                requirements=(req1_bolus_start(),),
                setup_variables=(),
                teardown_variables=(),
                samples=(5, 2),
            )


class TestScenarioSampler:
    def test_same_seed_same_programs(self):
        space = gpca_scenario_space()
        a = ScenarioSampler(space, seed=7)
        b = ScenarioSampler(space, seed=7)
        first = [a.sample() for _ in range(10)]
        second = [b.sample() for _ in range(10)]
        assert first == second

    def test_different_seeds_diverge(self):
        space = gpca_scenario_space()
        a = [ScenarioSampler(space, seed=1).sample() for _ in range(5)]
        b = [ScenarioSampler(space, seed=2).sample() for _ in range(5)]
        assert a != b

    def test_program_names_are_unique_and_indexed(self):
        sampler = ScenarioSampler(gpca_scenario_space(), seed=0)
        names = [sampler.sample().name for _ in range(20)]
        assert len(set(names)) == 20
        assert all(f"-{index:03d}" in name for index, name in enumerate(names))

    def test_sampled_programs_compile_and_respect_separation(self):
        sampler = ScenarioSampler(gpca_scenario_space(), seed=3)
        for compile_seed in range(30):
            program = sampler.sample()
            case = program.compile(compile_seed)
            times = case.stimulus_times()
            assert times == sorted(times)
            minimum = program.requirement.min_stimulus_separation_us
            measured = measured_times(case)
            assert all(b - a >= minimum for a, b in zip(measured, measured[1:]))

    def test_setup_steps_never_use_the_measured_variable(self):
        sampler = ScenarioSampler(gpca_scenario_space(), seed=5)
        for _ in range(30):
            program = sampler.sample()
            step_variables = {s.variable for s in (*program.setup, *program.teardown)}
            assert program.requirement.stimulus.variable not in step_variables

    def test_mutation_is_valid_and_renamed(self):
        sampler = ScenarioSampler(gpca_scenario_space(), seed=0)
        parent = sampler.sample()
        mutant = sampler.mutate(parent)
        assert mutant.name != parent.name
        assert mutant.name.startswith(parent.name)
        assert mutant.requirement == parent.requirement
        mutant.compile(seed=9)  # must stay compilable

    def test_chained_mutations_never_interleave_cycles(self):
        """Archive programs are re-mutated; cycles must stay disjoint and
        names bounded no matter how long the mutation chain gets."""
        for seed in range(3):
            sampler = ScenarioSampler(gpca_scenario_space(), seed=seed)
            program = sampler.sample()
            for _ in range(40):
                program = sampler.mutate(program)
                offsets = [
                    step.offset_us for step in (*program.setup, *program.teardown)
                ]
                last_event = max(
                    [program.stimulus.offset_us + program.stimulus.span_us, *offsets]
                )
                assert last_event < program.spacing.min_us
                assert program.name.count("~") <= 1

    def test_rich_sampling_floors_step_counts(self):
        sampler = ScenarioSampler(gpca_scenario_space(), seed=2)
        for _ in range(10):
            program = sampler.sample(min_setup_steps=1, min_teardown_steps=1)
            assert program.setup and program.teardown

    def test_mutation_stream_is_deterministic(self):
        space = gpca_scenario_space()
        a = ScenarioSampler(space, seed=4)
        b = ScenarioSampler(space, seed=4)
        assert a.mutate(a.sample()) == b.mutate(b.sample())

    def test_req1_spacing_floor_respects_bolus_duration(self):
        """REQ1 programs can never schedule requests closer than 4200 ms."""
        sampler = ScenarioSampler(gpca_scenario_space(), seed=11)
        req1_programs = []
        while len(req1_programs) < 5:
            program = sampler.sample()
            if program.requirement.requirement_id == "REQ1":
                req1_programs.append(program)
        for program in req1_programs:
            assert program.spacing.min_us - program.stimulus.span_us >= ms(4200)
